package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/pglp/panda/internal/server/storage"
)

// Sync selects when appends reach stable storage.
type Sync int

const (
	// SyncBuffered flushes every append to the OS (it survives a process
	// crash) but fsyncs only on rotation and Close — the throughput
	// mode; a power failure can lose the most recent appends.
	SyncBuffered Sync = iota
	// SyncAlways fsyncs before Insert/InsertBatch returns — the
	// durability mode; an acknowledged write survives power failure.
	// Concurrent writers on the same stripe share fsyncs (group
	// commit), and writers on different stripes fsync in parallel.
	SyncAlways
)

// String names the policy ("buffered" or "always") for logs and flags.
func (s Sync) String() string {
	if s == SyncAlways {
		return "always"
	}
	return "buffered"
}

// Options configures a WAL-backed store. The zero value is usable: one
// stripe over a single memory shard, buffered syncs, default compaction
// thresholds.
type Options struct {
	// Shards selects the number of storage shards, which is also the
	// number of log stripes: the store keeps one independently locked
	// append log per memory shard, routed by storage.ShardFor, so
	// concurrent writes to different shards append (and fsync) in
	// parallel. The count is pinned by the directory's MANIFEST on
	// first Open; reopening with a different explicit value fails with
	// ErrStripeMismatch rather than silently mis-sharding (see
	// PERSISTENCE.md to restripe). 0 means "no opinion": adopt an
	// existing directory's MANIFEST count, or lay out a fresh
	// directory with a single stripe. Negative and 1 both mean an
	// explicit single stripe.
	Shards int
	// Sync is the append durability policy.
	Sync Sync
	// CompactMinGarbage is the number of superseded (user, t) records
	// that must accumulate in one stripe's log before that stripe's
	// background compactor considers rewriting it. 0 selects the
	// default (8192); negative disables automatic compaction (Compact
	// may still be called). The threshold is per stripe: each stripe
	// compacts on its own garbage, independently of the others.
	CompactMinGarbage int
	// CompactGarbageFraction is the garbage/(garbage+live) ratio —
	// measured within one stripe — that, together with
	// CompactMinGarbage, triggers compaction. 0 selects the default
	// (0.5).
	CompactGarbageFraction float64
}

const (
	defaultCompactMinGarbage      = 8192
	defaultCompactGarbageFraction = 0.5

	snapshotName = "snapshot.dat"
)

// Stats is a point-in-time observation of a store's log state,
// aggregated across stripes.
type Stats struct {
	LiveRecords int    // records in memory (== storage.Store.Len)
	Garbage     int    // superseded records still occupying log bytes, all stripes
	Stripes     int    // number of log stripes (== memory shards, MANIFEST-pinned)
	ActiveSeq   uint64 // highest active segment sequence across stripes
	Compactions uint64 // completed per-stripe snapshot rewrites since Open
	TornTail    bool   // whether Open truncated a torn final record in any stripe
	Migrated    bool   // whether Open migrated a legacy single-log layout
	CompactErr  error  // first stripe's unrecovered background-compaction failure, nil once all succeed
}

// Store is a durable storage.Store: N append-only write-ahead log
// stripes — one per memory shard — over a sharded in-memory store.
// Writes append to their stripe's log before touching memory; reads
// are served entirely from memory. Each stripe has its own append
// mutex, segment sequence, snapshot, and background compactor, so the
// durable write path parallelizes across shards instead of serializing
// on one log mutex. Close flushes and stops the compactors; a Store
// must be Closed before its directory is opened again.
//
// Crash-safety contract, in terms of what survives where:
//
//   - After Insert/InsertBatch returns under SyncAlways, the records
//     are on stable storage (each involved stripe was fsynced) and a
//     crash or power cut replays them.
//   - Under SyncBuffered they are in the OS page cache: a process
//     crash keeps them, a power cut may drop a suffix of them.
//   - A batch spanning stripes is appended stripe-by-stripe; a crash
//     in the middle durably keeps some stripes' records and not
//     others. Replay reports whatever records are individually intact
//     (partial-batch semantics) — batch atomicity is a property of the
//     in-memory view, never of crash recovery. See PERSISTENCE.md.
//   - After Sync returns nil, everything appended so far is durable.
//   - After Close returns nil, everything is durable and the directory
//     may be reopened.
//
// The storage.Store interface has no error returns, so append failures
// (disk full, I/O errors) cannot surface per-write: each stripe
// records its first such error, keeps serving memory, and reports it
// from Err, Sync and Close. Callers that need hard durability
// guarantees check Err (or Sync) after writing.
type Store struct {
	dir     string
	opts    Options
	mem     *storage.Sharded
	stripes []*stripe

	migrated   bool // this Open migrated a legacy single-log layout
	legacyTorn bool // the legacy log ended in a torn record

	closeMu  sync.Mutex
	closed   bool
	closeErr error

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// Open creates or recovers a WAL store in dir. Existing state is
// replayed into memory stripe by stripe: each stripe's snapshot first
// (if present), then its segments in sequence order. A torn final
// record in a stripe's last segment is truncated away; damage anywhere
// else returns ErrCorrupt. A directory laid out by the pre-stripe
// format (a single root log) is migrated to opts.Shards stripes before
// recovery, preserving record contents exactly. A directory whose
// MANIFEST pins a different stripe count than opts.Shards is refused
// with ErrStripeMismatch — nothing is modified in that case.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactMinGarbage == 0 {
		opts.CompactMinGarbage = defaultCompactMinGarbage
	}
	if opts.CompactGarbageFraction == 0 {
		opts.CompactGarbageFraction = defaultCompactGarbageFraction
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}

	manifestStripes, hasManifest, err := Manifest(dir)
	if err != nil {
		return nil, err
	}
	stripes := opts.Shards
	if stripes < 1 {
		stripes = 1
		if opts.Shards == 0 && hasManifest {
			// "No opinion": adopt the directory's pinned count, so
			// embedders that never set Shards reopen any dir cleanly.
			stripes = manifestStripes
		}
	}
	legacySeqs, legacySnap, err := legacyLayout(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	migrated, legacyTorn := false, false
	switch {
	case hasManifest:
		if manifestStripes != stripes {
			return nil, fmt.Errorf("%w: data dir %s was laid out with %d stripes, got Shards=%d; reopen with Shards=%d (or 0 to adopt) or restripe offline (PERSISTENCE.md)",
				ErrStripeMismatch, dir, manifestStripes, opts.Shards, manifestStripes)
		}
		// Legacy files alongside a MANIFEST are leftovers of a crash
		// between migration commit and cleanup; every record in them is
		// already in the stripe snapshots.
		if err := removeLegacy(dir, legacySeqs, legacySnap); err != nil {
			return nil, err
		}
	case len(legacySeqs) > 0 || legacySnap:
		legacyTorn, err = migrateLegacy(dir, stripes, legacySeqs, legacySnap)
		if err != nil {
			return nil, err
		}
		migrated = true
	default:
		// A truly fresh directory. Stripe directories without a
		// MANIFEST mean the manifest was lost or deleted: refusing is
		// the only safe move, because laying a new MANIFEST with a
		// different count over existing stripes would mis-route
		// compaction and silently drop records from disk.
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		for _, e := range entries {
			var i int
			if _, serr := fmt.Sscanf(e.Name(), "stripe-%d", &i); serr == nil && e.IsDir() {
				return nil, fmt.Errorf("wal: %s has stripe directories but no MANIFEST; restore the MANIFEST (two lines: %q, %q) or recover from backup — see PERSISTENCE.md",
					dir, fmt.Sprintf("panda-wal-manifest v%d", manifestVersion), "stripes <N>")
			}
			// LSM-layout files (even with their MANIFEST lost) must not
			// be buried under a fresh WAL layout.
			name := e.Name()
			if (strings.HasPrefix(name, "log-") && strings.HasSuffix(name, ".log")) ||
				(strings.HasPrefix(name, "run-") && strings.HasSuffix(name, ".sst")) {
				return nil, fmt.Errorf("wal: %s holds LSM (kv) backend files (%s); open it with the kv backend (-backend=kv)", dir, name)
			}
		}
		if err := writeManifest(dir, stripes); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
	}

	s := &Store{
		dir:        dir,
		opts:       opts,
		mem:        storage.NewSharded(stripes),
		stripes:    make([]*stripe, stripes),
		migrated:   migrated,
		legacyTorn: legacyTorn,
		done:       make(chan struct{}),
	}
	for i := range s.stripes {
		st := &stripe{
			idx:   i,
			dir:   filepath.Join(dir, stripeDirName(i)),
			store: s,
			kick:  make(chan struct{}, 1),
		}
		if err := st.recover(); err != nil {
			// Release the segments the earlier stripes already opened.
			for _, prev := range s.stripes {
				if prev != nil && prev.f != nil {
					prev.f.Close()
				}
			}
			return nil, err
		}
		s.stripes[i] = st
	}
	if opts.CompactMinGarbage > 0 {
		for _, st := range s.stripes {
			s.wg.Add(1)
			go s.compactLoop(st)
		}
	}
	return s, nil
}

// stripeFor routes a user to their stripe — the same placement the
// memory shards use, by construction.
func (s *Store) stripeFor(user int) *stripe {
	return s.stripes[storage.ShardFor(user, len(s.stripes))]
}

// NumShards returns the stripe count (= the memory shard count): the
// partition fan-out a drain layer should pin its workers to so a
// coalesced batch stays within each worker's stripe subset.
func (s *Store) NumShards() int { return len(s.stripes) }

// Insert appends the record to its stripe's log, then stores it in
// memory. Under SyncAlways it returns only after the stripe is fsynced
// (sharing the fsync with concurrent writers on the same stripe). It
// implements storage.Store.
func (s *Store) Insert(rec storage.Record) bool {
	st := s.stripeFor(rec.User)
	st.mu.Lock()
	n := st.appendLocked(rec)
	added := s.mem.Insert(rec)
	if !added {
		st.garbage++
	}
	st.maybeKickLocked()
	st.mu.Unlock()
	if s.opts.Sync == SyncAlways {
		st.syncTo(n)
	}
	return added
}

// InsertBatch appends the batch to every involved stripe's log (one
// flush per stripe), then stores it in memory atomically: all involved
// stripe mutexes are held, in index order, across the appends and the
// grouped memory insert, so a concurrent Scan sees the whole batch or
// none of it. Under SyncAlways it fsyncs the involved stripes in
// parallel before returning; batches confined to different stripes
// never contend at all. Note that crash recovery is per-record, not
// per-batch: see the partial-batch semantics on Store.
func (s *Store) InsertBatch(recs []storage.Record) int {
	if len(recs) == 0 {
		return 0
	}
	n := len(s.stripes)
	groups := make([][]storage.Record, n)
	if n == 1 {
		groups[0] = recs
	} else {
		for _, rec := range recs {
			i := storage.ShardFor(rec.User, n)
			groups[i] = append(groups[i], rec)
		}
	}
	positions := make([]uint64, n)
	for i, g := range groups {
		if len(g) > 0 {
			st := s.stripes[i]
			st.mu.Lock()
			positions[i] = st.appendLocked(g...)
		}
	}
	addedPer := s.mem.InsertGrouped(groups)
	added := 0
	for i, g := range groups {
		if len(g) > 0 {
			st := s.stripes[i]
			st.garbage += len(g) - addedPer[i]
			added += addedPer[i]
			st.maybeKickLocked()
			st.mu.Unlock()
		}
	}
	if s.opts.Sync == SyncAlways {
		s.syncStripes(groups, positions)
	}
	return added
}

// syncStripes makes the batch durable: one group-commit fsync per
// involved stripe, issued in parallel when the batch spans more than
// one stripe.
func (s *Store) syncStripes(groups [][]storage.Record, positions []uint64) {
	first := -1
	count := 0
	for i, g := range groups {
		if len(g) > 0 {
			if first < 0 {
				first = i
			}
			count++
		}
	}
	if count == 1 {
		s.stripes[first].syncTo(positions[first])
		return
	}
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(st *stripe, n uint64) {
			defer wg.Done()
			st.syncTo(n)
		}(s.stripes[i], positions[i])
	}
	wg.Wait()
}

// Len reports the stored record count; reads are served from the
// hydrated in-memory store, never the logs.
func (s *Store) Len() int { return s.mem.Len() }

// MaxT reports the largest stored timestep (-1 if empty), from memory.
func (s *Store) MaxT() int { return s.mem.MaxT() }

// UserRecords returns one user's records in ascending T, from memory.
func (s *Store) UserRecords(user int) []storage.Record { return s.mem.UserRecords(user) }

// UserRecordsAfter returns up to limit records with T > afterT, from
// memory.
func (s *Store) UserRecordsAfter(user, afterT, limit int) []storage.Record {
	return s.mem.UserRecordsAfter(user, afterT, limit)
}

// Users returns the IDs with at least one record, ascending, from
// memory.
func (s *Store) Users() []int { return s.mem.Users() }

// At returns every user's record at timestep t, from memory.
func (s *Store) At(t int) []storage.Record { return s.mem.At(t) }

// Scan visits every record in a consistent point-in-time view, from
// memory. The view is consistent across stripes: a concurrent
// cross-stripe InsertBatch is never half-visible, because the memory
// apply locks every involved shard before inserting anything.
func (s *Store) Scan(fn func(storage.Record) bool) { s.mem.Scan(fn) }

// ScanRange visits records with t0 <= T <= t1 in ascending T, from
// memory, with the same cross-stripe consistency as Scan.
func (s *Store) ScanRange(t0, t1 int, fn func(storage.Record) bool) {
	s.mem.ScanRange(t0, t1, fn)
}

// Gen returns timestep t's write generation, from memory. Write
// generations are process state, not log state: a restart replays
// records (rebuilding nonzero generations) but does not reproduce the
// previous process's counts — which is fine, because the caches they
// version are per-process too.
func (s *Store) Gen(t int) uint64 { return s.mem.Gen(t) }

// Epoch returns the global write generation, from memory; see Gen for
// the restart semantics.
func (s *Store) Epoch() uint64 { return s.mem.Epoch() }

// Err returns the first append or sync failure of any stripe, if any.
// Once non-nil that stripe's log has stopped growing and only memory
// is being updated — durability is lost for its shard of users, and
// callers that require durability should fail-stop (cmd/panda-server
// shuts down when this trips). Background-compaction failures are
// reported separately (Stats.CompactErr): they leave the append path
// intact.
func (s *Store) Err() error {
	for _, st := range s.stripes {
		st.mu.Lock()
		err := st.err
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// CompactErr returns the first stripe's unrecovered background-
// compaction failure, nil once all stripes' last compactions
// succeeded. Compaction failures are retried and never void
// acknowledged durability — the logs keep growing until the cause
// clears. It is the storage.Durable accessor for Stats().CompactErr.
func (s *Store) CompactErr() error {
	for _, st := range s.stripes {
		st.mu.Lock()
		err := st.compactErr
		st.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes buffered appends on every stripe to stable storage (a
// barrier for SyncBuffered mode: after a nil return, everything
// appended before the call survives power failure) and reports the
// first sticky append failure.
func (s *Store) Sync() error {
	var first error
	for _, st := range s.stripes {
		if err := st.sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a point-in-time observation of the log, aggregated
// across stripes. Fields from different stripes are sampled one stripe
// at a time (no global pause), so counters may be skewed by concurrent
// writes — fine for monitoring, not a consistency point.
func (s *Store) Stats() Stats {
	out := Stats{
		LiveRecords: s.mem.Len(),
		Stripes:     len(s.stripes),
		TornTail:    s.legacyTorn,
		Migrated:    s.migrated,
	}
	for _, st := range s.stripes {
		st.mu.Lock()
		out.Garbage += st.garbage
		if st.seq > out.ActiveSeq {
			out.ActiveSeq = st.seq
		}
		out.Compactions += st.compactions
		out.TornTail = out.TornTail || st.tornTail
		if out.CompactErr == nil {
			out.CompactErr = st.compactErr
		}
		st.mu.Unlock()
	}
	return out
}

// Close stops the compactors, then flushes, fsyncs and closes every
// stripe's active segment. After a nil return the full store contents
// are durable and the directory may be reopened. The store must not be
// used afterwards; a second Close returns the first one's result.
func (s *Store) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()

	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	// Seal every stripe in parallel: each close costs an fsync, and on
	// a slow device N serial fsyncs would turn shutdown into N device
	// round-trips. The stripes are independent logs — the same reason
	// appends parallelize is the reason closes do.
	errs := make([]error, len(s.stripes))
	var wg sync.WaitGroup
	for i, st := range s.stripes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = st.close()
		}()
	}
	wg.Wait()
	var firstErr, firstCompactErr error
	for i, st := range s.stripes {
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
		st.mu.Lock()
		if st.compactErr != nil && firstCompactErr == nil {
			firstCompactErr = st.compactErr
		}
		st.mu.Unlock()
	}
	s.closeErr = firstErr
	if s.closeErr == nil {
		// Surface an unrecovered compaction failure at shutdown so it
		// is not lost entirely; the data itself is safe (that stripe's
		// log kept growing).
		s.closeErr = firstCompactErr
	}
	return s.closeErr
}

// compactLoop runs one stripe's compactions when kicked, until Close.
// A failed compaction is recorded as the stripe's compactErr (visible
// in Stats and, if never recovered, from Close) but does not stop the
// append path: the log keeps growing and the next garbage accumulation
// retries.
func (s *Store) compactLoop(st *stripe) {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-st.kick:
		}
		if err := s.compactStripe(st); err != nil {
			st.mu.Lock()
			st.compactErr = err
			st.mu.Unlock()
		}
	}
}

// Compact rewrites every stripe's log as snapshot+tail (see
// compactStripe) and returns the first failure. Stripes compact
// independently; a failure in one does not stop the others.
func (s *Store) Compact() error {
	var first error
	for _, st := range s.stripes {
		if err := s.compactStripe(st); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// compactStripe rewrites one stripe's log as snapshot+tail: it rotates
// the stripe's appends onto a fresh segment, writes every live record
// of the stripe's memory shard to a new snapshot (atomically replacing
// the old one), and deletes the now-redundant older segments. Appends
// on this stripe are blocked only for the rotation, not for the
// snapshot write; other stripes are never touched.
//
// Correctness of the rotate-then-scan order: the snapshot is a scan of
// the stripe's memory shard taken *after* rotation, so it equals
// (shard state at rotation) plus some prefix of the new segment's
// appends — the shard and the stripe hold exactly the same keys
// because both route by storage.ShardFor. Replay applies the snapshot
// first and then the new segment in full, and since the final state of
// a (user, t) key is decided by its last log entry, replaying that
// prefix over the snapshot is idempotent. The scan holds only the
// shard's read lock, so a snapshot of one stripe runs concurrently
// with appends to every stripe — including its own.
//
// Old segments are deleted strictly oldest-first, so a crash mid-
// deletion leaves a contiguous *newest* suffix of them, and that is
// the only leftover shape replay can see. A suffix is harmless: a key
// whose last pre-rotation write sits in a surviving segment replays to
// that (correct) value, and a key whose last write sits only in
// already-deleted older segments has no surviving entry at all, so the
// snapshot's value stands. Deleting newest-first would break exactly
// this — a surviving *older* segment could overwrite the snapshot's
// newer value on replay.
func (s *Store) compactStripe(st *stripe) error {
	st.compactMu.Lock()
	defer st.compactMu.Unlock()

	// Rotate: seal the active segment and swing appends to the next
	// one. fsyncMu is held across the rotation so a group-commit fsync
	// in flight on the old file completes first, and so the rotation's
	// own fsync can mark everything flushed so far as synced.
	st.fsyncMu.Lock()
	st.mu.Lock()
	unlock := func() { st.mu.Unlock(); st.fsyncMu.Unlock() }
	if st.closed {
		unlock()
		return errors.New("wal: store closed")
	}
	if st.err != nil {
		err := st.err
		unlock()
		return err
	}
	if err := st.w.Flush(); err != nil {
		st.err = fmt.Errorf("wal: flush: %w", err)
		err = st.err
		unlock()
		return err
	}
	//panda:allow fsynclock — rotation seals the old segment: fsyncMu is already held, writers queue behind the swap by design, and the fsync doubles as their group commit
	if err := st.f.Sync(); err != nil {
		st.err = fmt.Errorf("wal: fsync: %w", err)
		err = st.err
		unlock()
		return err
	}
	if err := st.f.Close(); err != nil {
		st.err = fmt.Errorf("wal: close: %w", err)
		err = st.err
		unlock()
		return err
	}
	oldSeq := st.seq
	minSeq := st.minSeq
	st.seq++
	if err := st.openSegmentLocked(st.seq); err != nil {
		st.err = err
		unlock()
		return err
	}
	// Everything the snapshot will absorb — including all garbage so
	// far — predates the new segment; and everything appended so far
	// just hit stable storage.
	st.garbage = 0
	st.synced = st.appends
	unlock()

	// Snapshot: scan the stripe's memory shard (consistent view,
	// concurrent with new appends) into a temp file, then atomically
	// replace.
	tmpPath := filepath.Join(st.dir, snapshotName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := w.Write(fileHeader()); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	var frame []byte
	var writeErr error
	s.mem.ScanShard(st.idx, func(rec storage.Record) bool {
		frame = appendFrame(frame[:0], rec)
		if _, err := w.Write(frame); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr == nil {
		writeErr = w.Flush()
	}
	if writeErr == nil {
		writeErr = tmp.Sync()
	}
	if closeErr := tmp.Close(); writeErr == nil {
		writeErr = closeErr
	}
	if writeErr != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", writeErr)
	}
	if err := os.Rename(tmpPath, filepath.Join(st.dir, snapshotName)); err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := syncDir(st.dir); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}

	// Drop segments the snapshot superseded — oldest first, so a crash
	// partway through can only leave the newest suffix (see above).
	for seq := minSeq; seq <= oldSeq; seq++ {
		path := filepath.Join(st.dir, segmentName(seq))
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: compact: %w", err)
		}
	}

	st.mu.Lock()
	st.minSeq = oldSeq + 1
	st.compactions++
	st.compactErr = nil
	st.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
