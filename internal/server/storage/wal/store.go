package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/pglp/panda/internal/server/storage"
)

// Sync selects when appends reach stable storage.
type Sync int

const (
	// SyncBuffered flushes every append to the OS (it survives a process
	// crash) but fsyncs only on rotation and Close — the throughput
	// mode; a power failure can lose the most recent appends.
	SyncBuffered Sync = iota
	// SyncAlways fsyncs after every Insert/InsertBatch — the durability
	// mode; an acknowledged write survives power failure.
	SyncAlways
)

// String names the policy ("buffered" or "always") for logs and flags.
func (s Sync) String() string {
	if s == SyncAlways {
		return "always"
	}
	return "buffered"
}

// Options configures a WAL-backed store. The zero value is usable:
// single-lock memory store, buffered syncs, default compaction
// thresholds.
type Options struct {
	// Shards selects the in-memory store the log hydrates: <= 1 the
	// single-lock store, otherwise a sharded store with that many locks.
	// Note the write path is serialized by the log regardless; shards
	// help the read path under write load.
	Shards int
	// Sync is the append durability policy.
	Sync Sync
	// CompactMinGarbage is the number of superseded (user, t) records
	// that must accumulate in the log before the background compactor
	// considers rewriting it. 0 selects the default (8192); negative
	// disables automatic compaction (Compact may still be called).
	CompactMinGarbage int
	// CompactGarbageFraction is the garbage/(garbage+live) ratio that,
	// together with CompactMinGarbage, triggers compaction. 0 selects
	// the default (0.5).
	CompactGarbageFraction float64
}

const (
	defaultCompactMinGarbage      = 8192
	defaultCompactGarbageFraction = 0.5

	snapshotName = "snapshot.dat"
)

// Stats is a point-in-time observation of a store's log state.
type Stats struct {
	LiveRecords int    // records in memory (== storage.Store.Len)
	Garbage     int    // superseded records still occupying log bytes
	ActiveSeq   uint64 // sequence number of the append segment
	Compactions uint64 // completed snapshot rewrites since Open
	TornTail    bool   // whether Open truncated a torn final record
	CompactErr  error  // latest background-compaction failure, nil once one succeeds
}

// Store is a durable storage.Store: an append-only write-ahead log over
// an in-memory store. Writes append to the log before touching memory;
// reads are served entirely from memory. A background compactor rewrites
// the log as snapshot+tail when superseded records cross the configured
// thresholds. Close flushes and stops the compactor; a Store must be
// Closed before its directory is opened again.
//
// The storage.Store interface has no error returns, so append failures
// (disk full, I/O errors) cannot surface per-write: the store records
// the first such error, keeps serving memory, and reports it from Err,
// Sync and Close. Callers that need hard durability guarantees check
// Err (or Sync) after writing.
type Store struct {
	dir  string
	opts Options
	mem  storage.Store

	// mu serializes appends, rotation and close, and orders log appends
	// identically to memory inserts (replay correctness depends on the
	// log being a linearization of the memory writes).
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     uint64
	minSeq  uint64 // lowest segment still on disk
	garbage int
	err     error // first append/sync failure, sticky
	closed  bool

	// compactErr is the latest background-compaction failure, kept
	// separate from err: a failed snapshot rewrite leaves the append
	// path fully functional (the log just keeps growing), so it must
	// not fail-stop appends. Cleared by the next successful Compact.
	compactErr error // under mu

	compactMu   sync.Mutex // serializes Compact with itself
	compactions uint64     // under mu
	tornTail    bool
	closeOnce   sync.Once

	kick chan struct{} // nudges the compactor; buffered, size 1
	done chan struct{}
	wg   sync.WaitGroup

	buf []byte // append scratch, under mu
}

// Open creates or recovers a WAL store in dir. Existing state is
// replayed into memory: the snapshot first (if present), then every
// segment in sequence order. A torn final record in the last segment is
// truncated away; damage anywhere else returns ErrCorrupt.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CompactMinGarbage == 0 {
		opts.CompactMinGarbage = defaultCompactMinGarbage
	}
	if opts.CompactGarbageFraction == 0 {
		opts.CompactGarbageFraction = defaultCompactGarbageFraction
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var mem storage.Store
	if opts.Shards > 1 {
		mem = storage.NewShardedStore(opts.Shards)
	} else {
		mem = storage.NewMemStore()
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		mem:  mem,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if opts.CompactMinGarbage > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// recover replays snapshot + segments into memory and opens the last
// segment for appending (creating segment 1 in a fresh directory).
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			// Leftover of a compaction that crashed before rename;
			// never referenced, safe to discard.
			_ = os.Remove(filepath.Join(s.dir, e.Name()))
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	snapPath := filepath.Join(s.dir, snapshotName)
	if _, err := os.Stat(snapPath); err == nil {
		if _, err := replayFile(snapPath, func(rec storage.Record) { s.mem.Insert(rec) }); err != nil {
			if err == errTorn {
				return fmt.Errorf("%w: snapshot %s", ErrCorrupt, snapPath)
			}
			return fmt.Errorf("wal: replaying snapshot: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("wal: %w", err)
	}

	replayInsert := func(rec storage.Record) {
		if !s.mem.Insert(rec) {
			s.garbage++ // superseded an earlier log entry
		}
	}
	for i, seq := range seqs {
		path := filepath.Join(s.dir, segmentName(seq))
		validEnd, err := replayFile(path, replayInsert)
		switch {
		case err == nil:
		case err == errTorn && i == len(seqs)-1:
			// Torn tail of a crashed append: keep everything before it,
			// truncate the rest so appends resume from a clean frame
			// boundary. A zero-length or headerless file (crash between
			// create and header write) truncates to empty and the
			// header is rewritten below.
			if err := os.Truncate(path, validEnd); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			s.tornTail = true
		case err == errTorn:
			return fmt.Errorf("%w: segment %s", ErrCorrupt, path)
		default:
			return fmt.Errorf("wal: replaying %s: %w", path, err)
		}
	}

	s.seq, s.minSeq = 1, 1
	if n := len(seqs); n > 0 {
		s.seq, s.minSeq = seqs[n-1], seqs[0]
	}
	return s.openSegmentLocked(s.seq)
}

// openSegmentLocked opens segment seq for appending, writing the file
// header if the file is new (or was truncated to empty).
func (s *Store) openSegmentLocked(seq uint64) error {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if st.Size() == 0 {
		if _, err := w.Write(fileHeader()); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	s.f, s.w = f, w
	return nil
}

// appendLocked frames recs into the active segment and flushes per the
// sync policy. Failures are sticky: the first one is kept and every
// later append degrades to memory-only (reported by Err/Sync/Close).
func (s *Store) appendLocked(recs ...storage.Record) {
	if s.err != nil || s.closed {
		return
	}
	s.buf = s.buf[:0]
	for _, rec := range recs {
		s.buf = appendFrame(s.buf, rec)
	}
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = fmt.Errorf("wal: append: %w", err)
		return
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("wal: append: %w", err)
		return
	}
	if s.opts.Sync == SyncAlways {
		if err := s.f.Sync(); err != nil {
			s.err = fmt.Errorf("wal: fsync: %w", err)
		}
	}
}

// maybeKickCompactorLocked nudges the background compactor when the
// garbage thresholds are crossed.
func (s *Store) maybeKickCompactorLocked() {
	if s.opts.CompactMinGarbage <= 0 || s.garbage < s.opts.CompactMinGarbage {
		return
	}
	total := s.garbage + s.mem.Len()
	if float64(s.garbage) < s.opts.CompactGarbageFraction*float64(total) {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Insert appends the record to the log, then stores it in memory. It
// implements storage.Store.
func (s *Store) Insert(rec storage.Record) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(rec)
	added := s.mem.Insert(rec)
	if !added {
		s.garbage++
	}
	s.maybeKickCompactorLocked()
	return added
}

// InsertBatch appends the whole batch as one flush (and one fsync under
// SyncAlways), then stores it in memory atomically.
func (s *Store) InsertBatch(recs []storage.Record) int {
	if len(recs) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(recs...)
	added := s.mem.InsertBatch(recs)
	s.garbage += len(recs) - added
	s.maybeKickCompactorLocked()
	return added
}

// Len reports the stored record count; reads are served from the
// hydrated in-memory store, never the log.
func (s *Store) Len() int { return s.mem.Len() }

// MaxT reports the largest stored timestep (-1 if empty), from memory.
func (s *Store) MaxT() int { return s.mem.MaxT() }

// UserRecords returns one user's records in ascending T, from memory.
func (s *Store) UserRecords(user int) []storage.Record { return s.mem.UserRecords(user) }

// UserRecordsAfter returns up to limit records with T > afterT, from
// memory.
func (s *Store) UserRecordsAfter(user, afterT, limit int) []storage.Record {
	return s.mem.UserRecordsAfter(user, afterT, limit)
}

// Users returns the IDs with at least one record, ascending, from
// memory.
func (s *Store) Users() []int { return s.mem.Users() }

// At returns every user's record at timestep t, from memory.
func (s *Store) At(t int) []storage.Record { return s.mem.At(t) }

// Scan visits every record in a consistent point-in-time view, from
// memory.
func (s *Store) Scan(fn func(storage.Record) bool) { s.mem.Scan(fn) }

// ScanRange visits records with t0 <= T <= t1 in ascending T, from
// memory.
func (s *Store) ScanRange(t0, t1 int, fn func(storage.Record) bool) {
	s.mem.ScanRange(t0, t1, fn)
}

// Gen returns timestep t's write generation, from memory. Write
// generations are process state, not log state: a restart replays
// records (rebuilding nonzero generations) but does not reproduce the
// previous process's counts — which is fine, because the caches they
// version are per-process too.
func (s *Store) Gen(t int) uint64 { return s.mem.Gen(t) }

// Epoch returns the global write generation, from memory; see Gen for
// the restart semantics.
func (s *Store) Epoch() uint64 { return s.mem.Epoch() }

// Err returns the first append or sync failure, if any. Once non-nil
// the log has stopped growing and only memory is being updated —
// durability is lost, and callers that require it should fail-stop
// (cmd/panda-server shuts down when this trips). Background-compaction
// failures are reported separately (Stats.CompactErr): they leave the
// append path intact.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Sync flushes buffered appends to stable storage (a barrier for
// SyncBuffered mode) and reports any sticky append failure.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return fmt.Errorf("wal: store closed")
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("wal: flush: %w", err)
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("wal: fsync: %w", err)
	}
	return s.err
}

// Stats returns a point-in-time observation of the log.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		LiveRecords: s.mem.Len(),
		Garbage:     s.garbage,
		ActiveSeq:   s.seq,
		Compactions: s.compactions,
		TornTail:    s.tornTail,
		CompactErr:  s.compactErr,
	}
}

// Close stops the compactor, flushes and fsyncs the active segment, and
// closes it. The store must not be used afterwards.
func (s *Store) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.err != nil {
			return s.err
		}
		return s.compactErr
	}
	s.closed = true
	if flushErr := s.w.Flush(); flushErr != nil && s.err == nil {
		s.err = fmt.Errorf("wal: flush: %w", flushErr)
	}
	if syncErr := s.f.Sync(); syncErr != nil && s.err == nil {
		s.err = fmt.Errorf("wal: fsync: %w", syncErr)
	}
	if closeErr := s.f.Close(); closeErr != nil && s.err == nil {
		s.err = fmt.Errorf("wal: close: %w", closeErr)
	}
	if s.err != nil {
		return s.err
	}
	// Surface an unrecovered compaction failure at shutdown so it is
	// not lost entirely; the data itself is safe (the log kept growing).
	return s.compactErr
}

// compactLoop runs compactions when kicked, until Close. A failed
// compaction is recorded as compactErr (visible in Stats and, if never
// recovered, from Close) but does not stop the append path: the log
// keeps growing and the next garbage accumulation retries.
func (s *Store) compactLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
		}
		if err := s.Compact(); err != nil {
			s.mu.Lock()
			s.compactErr = err
			s.mu.Unlock()
		}
	}
}

// Compact rewrites the log as snapshot+tail: it rotates appends onto a
// fresh segment, writes every live record to a new snapshot (atomically
// replacing the old one), and deletes the now-redundant older segments.
// Appends are blocked only for the rotation, not for the snapshot write.
//
// Correctness of the rotate-then-scan order: the snapshot is a scan of
// memory taken *after* rotation, so it equals (state at rotation) plus
// some prefix of the new segment's appends. Replay applies the snapshot
// first and then the new segment in full, and since the final state of
// a (user, t) key is decided by its last log entry, replaying that
// prefix over the snapshot is idempotent.
//
// Old segments are deleted strictly oldest-first, so a crash mid-
// deletion leaves a contiguous *newest* suffix of them, and that is
// the only leftover shape replay can see. A suffix is harmless: a key
// whose last pre-rotation write sits in a surviving segment replays to
// that (correct) value, and a key whose last write sits only in
// already-deleted older segments has no surviving entry at all, so the
// snapshot's value stands. Deleting newest-first would break exactly
// this — a surviving *older* segment could overwrite the snapshot's
// newer value on replay.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Rotate: seal the active segment and swing appends to the next one.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("wal: store closed")
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("wal: flush: %w", err)
		s.mu.Unlock()
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("wal: fsync: %w", err)
		s.mu.Unlock()
		return s.err
	}
	if err := s.f.Close(); err != nil {
		s.err = fmt.Errorf("wal: close: %w", err)
		s.mu.Unlock()
		return s.err
	}
	oldSeq := s.seq
	minSeq := s.minSeq
	s.seq++
	if err := s.openSegmentLocked(s.seq); err != nil {
		s.err = err
		s.mu.Unlock()
		return err
	}
	// Everything the snapshot will absorb — including all garbage so
	// far — predates the new segment.
	s.garbage = 0
	s.mu.Unlock()

	// Snapshot: scan memory (consistent view, concurrent with new
	// appends) into a temp file, then atomically replace.
	tmpPath := filepath.Join(s.dir, snapshotName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := w.Write(fileHeader()); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: compact: %w", err)
	}
	var frame []byte
	var writeErr error
	s.mem.Scan(func(rec storage.Record) bool {
		frame = appendFrame(frame[:0], rec)
		if _, err := w.Write(frame); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr == nil {
		writeErr = w.Flush()
	}
	if writeErr == nil {
		writeErr = tmp.Sync()
	}
	if closeErr := tmp.Close(); writeErr == nil {
		writeErr = closeErr
	}
	if writeErr != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", writeErr)
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapshotName)); err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}

	// Drop segments the snapshot superseded — oldest first, so a crash
	// partway through can only leave the newest suffix (see above).
	for seq := minSeq; seq <= oldSeq; seq++ {
		path := filepath.Join(s.dir, segmentName(seq))
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: compact: %w", err)
		}
	}

	s.mu.Lock()
	s.minSeq = oldSeq + 1
	s.compactions++
	s.compactErr = nil
	s.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
