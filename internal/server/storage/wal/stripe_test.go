package wal

// Crash-recovery tests specific to the striped layout: stripe/shard
// placement agreement, MANIFEST enforcement, legacy single-log
// migration, partial cross-stripe batches, and the rotation/iterator
// interplay that snapshots (SaveJSON upstream) depend on.

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pglp/panda/internal/server/storage"
)

// TestStripePlacementMatchesShards pins the routing agreement the whole
// design rests on: stripe i's log files contain exactly the records of
// users with storage.ShardFor(user, N) == i — the same users whose
// memory lives in shard i — so a stripe snapshot taken from shard i can
// never drop someone else's records.
func TestStripePlacementMatchesShards(t *testing.T) {
	const stripes = 4
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
	for u := 0; u < 20; u++ {
		for ti := 0; ti < 3; ti++ {
			s.Insert(rec(u, ti, u+ti))
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < stripes; i++ {
		_, err := replayFile(stripePath(dir, i, segmentName(1)), func(r storage.Record) {
			if got := storage.ShardFor(r.User, stripes); got != i {
				t.Fatalf("stripe %d holds user %d, who routes to stripe %d", i, r.User, got)
			}
		})
		if err != nil {
			t.Fatalf("stripe %d: %v", i, err)
		}
	}
}

// TestStripeMismatchRejected: reopening a directory with a different
// Shards value must fail with ErrStripeMismatch and leave the data
// untouched — mis-sharded compaction would otherwise drop records from
// disk (see manifest.go).
func TestStripeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: 4, CompactMinGarbage: -1})
	for u := 0; u < 10; u++ {
		s.Insert(rec(u, 0, u))
	}
	want := collect(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{Shards: 8, CompactMinGarbage: -1}); !errors.Is(err, ErrStripeMismatch) {
		t.Fatalf("Open with wrong Shards: err=%v, want ErrStripeMismatch", err)
	}
	if _, err := Open(dir, Options{Shards: 1, CompactMinGarbage: -1}); !errors.Is(err, ErrStripeMismatch) {
		t.Fatalf("Open with explicit Shards=1: err=%v, want ErrStripeMismatch", err)
	}

	// Shards: 0 is "no opinion" — it adopts the MANIFEST's count
	// instead of failing, so embedders that never set the knob reopen
	// any directory cleanly.
	adopted := mustOpen(t, dir, noAutoCompact)
	if st := adopted.Stats(); st.Stripes != 4 {
		t.Fatalf("Shards=0 adopted %d stripes, want 4", st.Stripes)
	}
	if err := adopted.Close(); err != nil {
		t.Fatal(err)
	}

	// The refusal must not have modified anything.
	back := mustOpen(t, dir, Options{Shards: 4, CompactMinGarbage: -1})
	defer back.Close()
	got := collect(back)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records after mismatch rejections, want %d", len(got), len(want))
	}
	for k, r := range want {
		if got[k] != r {
			t.Fatalf("key %v: recovered %+v, want %+v", k, got[k], r)
		}
	}
}

// TestManifestMalformedRejected: a damaged or future-versioned MANIFEST
// is an error, never a guess.
func TestManifestMalformedRejected(t *testing.T) {
	for _, body := range []string{
		"",
		"panda-wal-manifest v2\n",
		"panda-wal-manifest v3\nstripes 4\n",
		"panda-wal-manifest v2\nstripes 0\n",
		"panda-wal-manifest v2\nstripes x\n",
		"something else\nstripes 4\n",
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, noAutoCompact); err == nil {
			t.Fatalf("Open accepted manifest %q", body)
		}
	}
}

// TestMissingManifestRejected: stripe directories without a MANIFEST
// (lost, or deleted in a misguided restripe attempt) must refuse to
// open — writing a fresh MANIFEST over them could mis-route compaction
// and drop records from disk.
func TestMissingManifestRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: 2, CompactMinGarbage: -1})
	s.Insert(rec(1, 0, 5))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Shards: 2, CompactMinGarbage: -1}); err == nil {
		t.Fatal("Open accepted stripe dirs without a MANIFEST")
	}
	// Restoring the manifest recovers the store intact.
	if err := writeManifest(dir, 2); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, Options{Shards: 2, CompactMinGarbage: -1})
	defer back.Close()
	if back.Len() != 1 || back.UserRecords(1)[0].Cell != 5 {
		t.Fatalf("recovered %d records after manifest restore", back.Len())
	}
}

// TestManifestReader covers the exported Manifest helper callers use to
// adopt a directory's existing stripe count before Open.
func TestManifestReader(t *testing.T) {
	dir := t.TempDir()
	if n, ok, err := Manifest(dir); n != 0 || ok || err != nil {
		t.Fatalf("Manifest on fresh dir = (%d, %v, %v)", n, ok, err)
	}
	s := mustOpen(t, dir, Options{Shards: 6, CompactMinGarbage: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n, ok, err := Manifest(dir); n != 6 || !ok || err != nil {
		t.Fatalf("Manifest after Open = (%d, %v, %v), want (6, true, nil)", n, ok, err)
	}
}

// buildLegacyDir lays a directory out in the pre-stripe ("v1") format:
// an optional root snapshot plus root segments.
func buildLegacyDir(t *testing.T, dir string, snap []storage.Record, segs ...[]storage.Record) {
	t.Helper()
	if snap != nil {
		writeLogFile(t, filepath.Join(dir, snapshotName), snap...)
	}
	for i, seg := range segs {
		writeLogFile(t, filepath.Join(dir, segmentName(uint64(i+1))), seg...)
	}
}

// TestLegacyMigrationRoundTrip: a pre-stripe data dir — snapshot,
// several segments, replacements across them — opens via migration with
// identical record contents, the MANIFEST is created, the legacy files
// are gone, and a second reopen (now striped) serves the same records
// without migrating again.
func TestLegacyMigrationRoundTrip(t *testing.T) {
	for _, stripes := range []int{1, 4} {
		dir := t.TempDir()
		buildLegacyDir(t, dir,
			[]storage.Record{rec(0, 0, 1), rec(1, 0, 2), rec(2, 0, 3)},
			[]storage.Record{rec(3, 1, 4), rec(0, 0, 9)}, // user 0 re-sent: cell 9 wins
			[]storage.Record{rec(4, 2, 5), rec(5, 3, 6)},
		)
		want := map[[2]int]int{
			{0, 0}: 9, {1, 0}: 2, {2, 0}: 3, {3, 1}: 4, {4, 2}: 5, {5, 3}: 6,
		}

		s := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
		st := s.Stats()
		if !st.Migrated || st.Stripes != stripes || st.TornTail {
			t.Fatalf("stripes=%d: stats after migration: %+v", stripes, st)
		}
		checkCells := func(s *Store, when string) {
			t.Helper()
			got := collect(s)
			if len(got) != len(want) {
				t.Fatalf("stripes=%d %s: %d records, want %d", stripes, when, len(got), len(want))
			}
			for k, cell := range want {
				if got[k].Cell != cell {
					t.Fatalf("stripes=%d %s: key %v cell %d, want %d", stripes, when, k, got[k].Cell, cell)
				}
			}
		}
		checkCells(s, "post-migration")
		// Migration doubles as a compaction: the stripe snapshots hold
		// only final values, so the superseded legacy entry is gone.
		if st.Garbage != 0 {
			t.Fatalf("stripes=%d: garbage after migration = %d, want 0", stripes, st.Garbage)
		}
		// The store is live: append through the striped layout.
		s.Insert(rec(6, 4, 7))
		want[[2]int{6, 4}] = 7
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		if _, err := os.Stat(filepath.Join(dir, snapshotName)); !os.IsNotExist(err) {
			t.Fatalf("stripes=%d: legacy snapshot survived migration", stripes)
		}
		for seq := uint64(1); seq <= 2; seq++ {
			if _, err := os.Stat(filepath.Join(dir, segmentName(seq))); !os.IsNotExist(err) {
				t.Fatalf("stripes=%d: legacy segment %d survived migration", stripes, seq)
			}
		}
		if n, ok, err := Manifest(dir); n != stripes || !ok || err != nil {
			t.Fatalf("stripes=%d: manifest after migration = (%d, %v, %v)", stripes, n, ok, err)
		}

		back := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
		if st := back.Stats(); st.Migrated {
			t.Fatalf("stripes=%d: second open re-migrated", stripes)
		}
		checkCells(back, "reopen")
		if err := back.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLegacyMigrationTornTail: a legacy log whose final segment ends in
// a torn record migrates like a normal recovery — the intact prefix is
// preserved, the torn record dropped, and Stats reports the torn tail.
func TestLegacyMigrationTornTail(t *testing.T) {
	dir := t.TempDir()
	buildLegacyDir(t, dir, nil, []storage.Record{rec(0, 0, 1), rec(1, 0, 2), rec(2, 0, 3)})
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, b[:len(b)-7], 0o644); err != nil { // tear record 2
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{Shards: 2, CompactMinGarbage: -1})
	defer s.Close()
	st := s.Stats()
	if !st.Migrated || !st.TornTail {
		t.Fatalf("stats after torn-tail migration: %+v", st)
	}
	if s.Len() != 2 {
		t.Fatalf("migrated %d records, want 2 (torn record dropped)", s.Len())
	}
}

// TestLegacyMigrationCorruptRejected: damage in a non-final legacy
// segment is corruption, and migration must refuse (leaving the legacy
// files in place) rather than silently drop the suffix.
func TestLegacyMigrationCorruptRejected(t *testing.T) {
	dir := t.TempDir()
	buildLegacyDir(t, dir, nil,
		[]storage.Record{rec(0, 0, 1), rec(1, 0, 2)},
		[]storage.Record{rec(2, 0, 3)},
	)
	seg := filepath.Join(dir, segmentName(1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+10] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Shards: 2, CompactMinGarbage: -1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt legacy dir: err=%v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("failed migration removed legacy files: %v", err)
	}
	if _, ok, _ := Manifest(dir); ok {
		t.Fatal("failed migration committed a MANIFEST")
	}
}

// TestLegacyMigrationRedoAfterCrash: a crash before the MANIFEST write
// leaves the legacy files authoritative; stale stripe snapshots and
// segments from the failed attempt must be overwritten/cleared, never
// replayed.
func TestLegacyMigrationRedoAfterCrash(t *testing.T) {
	const stripes = 2
	dir := t.TempDir()
	buildLegacyDir(t, dir, nil, []storage.Record{rec(0, 0, 1), rec(2, 0, 2)}) // both route to stripe 0
	// Simulated debris of a crashed earlier migration: a stale stripe
	// snapshot with a record that was later superseded, and a stray
	// stripe segment with a record that never existed in the legacy log.
	if err := os.MkdirAll(filepath.Join(dir, stripeDirName(0)), 0o755); err != nil {
		t.Fatal(err)
	}
	writeLogFile(t, stripePath(dir, 0, snapshotName), rec(0, 0, 63))
	writeLogFile(t, stripePath(dir, 0, segmentName(7)), rec(4, 9, 9))

	s := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
	defer s.Close()
	if !s.Stats().Migrated {
		t.Fatal("redo open did not migrate")
	}
	got := collect(s)
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want 2 (stale stripe files must not leak)", len(got))
	}
	if got[[2]int{0, 0}].Cell != 1 {
		t.Fatalf("user 0 cell %d, want 1 (stale snapshot value resurrected)", got[[2]int{0, 0}].Cell)
	}
	if _, ok := got[[2]int{4, 9}]; ok {
		t.Fatal("stray stripe segment record survived migration redo")
	}
}

// TestLegacyCleanupAfterCommittedMigration: a crash after the MANIFEST
// write but before legacy-file deletion leaves leftovers that the next
// Open deletes without replaying — the stripe snapshots are already the
// authority.
func TestLegacyCleanupAfterCommittedMigration(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: 2, CompactMinGarbage: -1})
	s.Insert(rec(1, 0, 5))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Leftover legacy segment: its records were (by the migration
	// ordering) absorbed before the MANIFEST landed, so a conflicting
	// record here must NOT win — it must simply be deleted.
	writeLogFile(t, filepath.Join(dir, segmentName(1)), rec(1, 0, 63), rec(9, 9, 9))

	back := mustOpen(t, dir, Options{Shards: 2, CompactMinGarbage: -1})
	defer back.Close()
	if back.Len() != 1 {
		t.Fatalf("recovered %d records, want 1 (leftover legacy file replayed)", back.Len())
	}
	if got := back.UserRecords(1)[0].Cell; got != 5 {
		t.Fatalf("user 1 cell %d, want 5", got)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatal("leftover legacy segment not cleaned up")
	}
}

// TestPartialCrossStripeBatch pins the honest crash semantics of a
// batch spanning stripes: the appends land stripe by stripe, so a crash
// between them durably keeps one stripe's half of the batch and loses
// the other's. Replay must surface exactly the intact records — no
// all-or-nothing pretense, and no refusal either (each stripe's log is
// individually well-formed).
func TestPartialCrossStripeBatch(t *testing.T) {
	const stripes = 2
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
	// One logical batch: users 0 and 2 route to stripe 0, users 1 and 3
	// to stripe 1.
	batch := []storage.Record{rec(0, 0, 10), rec(1, 0, 11), rec(2, 0, 12), rec(3, 0, 13)}
	if added := s.InsertBatch(batch); added != 4 {
		t.Fatalf("InsertBatch added %d, want 4", added)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash between the stripe appends: stripe 1's half never reached
	// the disk. Simulate by truncating stripe 1's segment back to its
	// header.
	if err := os.Truncate(stripePath(dir, 1, segmentName(1)), headerSize); err != nil {
		t.Fatal(err)
	}

	back := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
	defer back.Close()
	if back.Len() != 2 {
		t.Fatalf("recovered %d records, want 2 (stripe 0's half of the batch)", back.Len())
	}
	for _, u := range []int{0, 2} {
		if got := back.UserRecords(u); len(got) != 1 || got[0].Cell != 10+u {
			t.Fatalf("user %d records after partial-batch replay: %+v", u, got)
		}
	}
	for _, u := range []int{1, 3} {
		if got := back.UserRecords(u); len(got) != 0 {
			t.Fatalf("user %d records survived a truncated stripe: %+v", u, got)
		}
	}
}

// TestSyncAlwaysConcurrentStripes exercises the group-commit fsync path
// under the race detector: concurrent single-record and cross-stripe
// batch writers in SyncAlways mode, racing a compaction loop, must all
// be durable at Close.
func TestSyncAlwaysConcurrentStripes(t *testing.T) {
	const stripes = 4
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: stripes, Sync: SyncAlways, CompactMinGarbage: -1})
	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if i%4 == 0 {
					// Cross-stripe batch: users w, w+1, w+2 span stripes.
					s.InsertBatch([]storage.Record{
						rec(w, i, 1), rec(w+writers, i, 2), rec(w+2*writers, i, 3),
					})
				} else {
					s.Insert(rec(w, i, i%64))
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	cwg.Wait()
	want := collect(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
	defer back.Close()
	got := collect(back)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for k, r := range want {
		if got[k] != r {
			t.Fatalf("key %v: recovered %+v, want %+v", k, got[k], r)
		}
	}
}

// TestScanAtomicityDuringRotation is the regression test for the
// compaction/snapshot interplay: a full Scan (what DB.SaveJSON runs)
// racing cross-stripe batch inserts and per-stripe segment rotations
// must always observe whole batches — never a half-applied one — and
// nothing may be lost across the concurrent compactions. The audit
// behind it: rotation holds only the stripe's own locks and never the
// memory shard locks, and the stripe snapshot reads the shard under its
// read lock after rotation, so an iterator (holding all shard read
// locks) can overlap a rotation freely; the batch-atomicity guarantee
// comes solely from the memory apply locking every involved shard
// before inserting anything.
func TestScanAtomicityDuringRotation(t *testing.T) {
	const stripes = 4
	const users = 8 // spans all stripes
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})

	var (
		nextT   atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		scanErr = make(chan string, 1)
	)
	// Writer: each batch is one timestep across all users; a scan that
	// sees some but not all of a timestep's records caught a torn batch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ti := int(nextT.Add(1))
			batch := make([]storage.Record, users)
			for u := 0; u < users; u++ {
				batch[u] = rec(u, ti, ti%64)
			}
			s.InsertBatch(batch)
		}
	}()
	// Compactor: rotate all stripes as fast as possible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				select {
				case scanErr <- "Compact: " + err.Error():
				default:
				}
				return
			}
		}
	}()
	// Scanner (this goroutine): the SaveJSON access pattern.
	for i := 0; i < 200; i++ {
		perT := make(map[int]int)
		s.Scan(func(r storage.Record) bool {
			perT[r.T]++
			return true
		})
		for ti, n := range perT {
			if n != users {
				close(stop)
				wg.Wait()
				t.Fatalf("torn batch: timestep %d had %d records, want %d", ti, n, users)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-scanErr:
		t.Fatal(msg)
	default:
	}
	want := collect(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, Options{Shards: stripes, CompactMinGarbage: -1})
	defer back.Close()
	got := collect(back)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
}
