// Package wal is the durable persistence backend of the record layer:
// a striped write-ahead log layered over a sharded in-memory
// storage.Store. Every insert is appended to an on-disk log before it
// touches memory, so the full database state survives process
// restarts; Open replays the logs to rebuild memory, tolerating a torn
// final record from a crash mid-append.
//
// The log is striped: the store keeps one independent append log per
// memory shard (records route to stripes by storage.ShardFor, exactly
// like they route to shards), each with its own mutex, segment
// sequence, snapshot and compactor. Writes to different stripes
// append — and fsync — in parallel, and concurrent writers on the same
// stripe share fsyncs (group commit), so durable ingest scales with
// cores instead of serializing on a single log mutex.
//
// # On-disk layout
//
// A store owns one directory:
//
//	MANIFEST                     layout authority: format version + stripe count
//	stripe-000/ … stripe-NNN/    one subdirectory per stripe, each holding
//	  snapshot.dat               the stripe's compacted records, replaced
//	                             atomically (tmp+rename)
//	  wal-<seq>.log              the stripe's append segments, replayed in
//	                             ascending sequence
//	  *.tmp                      in-progress snapshots; removed on Open
//
// Snapshot and segment files share one format: an 8-byte file header
// (magic + version) followed by frames of
//
//	[4-byte LE payload length][4-byte CRC32-C of payload][payload]
//
// where the payload is one fixed-width binary storage.Record. The CRC
// lets replay distinguish a fully-written record from a torn one: an
// invalid frame (short header, short payload, wrong length, CRC
// mismatch) in a stripe's final segment marks the torn tail of a
// crashed append — everything before it is recovered, the tail is
// truncated away, and appends resume from the truncation point. The
// same damage anywhere else (an earlier segment, or a snapshot, which
// is only ever renamed into place complete) cannot be a torn append
// and is reported as corruption instead of silently dropped.
//
// The MANIFEST pins the stripe count: reopening with a different
// Options.Shards fails with ErrStripeMismatch instead of silently
// mis-routing records (see manifest.go for why that would lose data).
// Directories written by the pre-stripe layout — a bare snapshot.dat
// and wal-*.log in the root, no MANIFEST — are migrated in place on
// first Open; migration preserves record contents exactly and commits
// by writing the MANIFEST last.
//
// A batch that spans stripes is appended to each involved stripe in
// turn; a crash between those appends durably keeps some stripes'
// records and not others, and replay surfaces exactly the records that
// are individually intact (partial-batch semantics). Batch atomicity
// is a property of the live in-memory view — never of crash recovery.
// PERSISTENCE.md is the operator's guide to all of the above.
package wal
