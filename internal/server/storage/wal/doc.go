// Package wal is the durable persistence backend of the record layer: a
// write-ahead log layered over an in-memory storage.Store. Every insert
// is appended to an on-disk log before it touches memory, so the full
// database state survives process restarts; Open replays the log (and
// the compacted snapshot, if one exists) to rebuild memory, tolerating a
// torn final record from a crash mid-append.
//
// # On-disk layout
//
// A store owns one directory:
//
//	snapshot.dat        compacted records, replaced atomically (tmp+rename)
//	wal-<seq>.log       append segments, replayed in ascending sequence
//	*.tmp               in-progress snapshots; removed on Open
//
// Both file kinds share one format: an 8-byte file header (magic +
// version) followed by frames of
//
//	[4-byte LE payload length][4-byte CRC32-C of payload][payload]
//
// where the payload is one fixed-width binary storage.Record. The CRC
// lets replay distinguish a fully-written record from a torn one: an
// invalid frame (short header, short payload, wrong length, CRC
// mismatch) in the final segment marks the torn tail of a crashed
// append — everything before it is recovered, the tail is truncated
// away, and appends resume from the truncation point. The same damage
// anywhere else (an earlier segment, or the snapshot, which is only
// ever renamed into place complete) cannot be a torn append and is
// reported as corruption instead of silently dropped.
package wal
