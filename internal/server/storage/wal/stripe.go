package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/pglp/panda/internal/server/storage"
)

// stripe is one of the store's N independent logs: the records of the
// users routed to memory shard i (storage.ShardFor) append to stripe
// i's segments, under stripe i's mutex alone. Two batches touching
// different stripes therefore append — and fsync — fully in parallel;
// the old single-log store serialized them on one mutex.
//
// Locking, in acquisition order (never acquire leftwards):
//
//	fsyncMu  →  mu  →  (memory shard locks, inside storage.Sharded)
//
// mu guards the append path and orders log appends identically to the
// memory inserts of this stripe's shard — replay correctness needs the
// log to be a linearization of the shard's writes. fsyncMu serializes
// fsync with itself and with segment rotation, and is deliberately NOT
// held during appends: that is the group commit. Writers append+flush
// under mu, release it, then call syncTo; whichever writer reaches
// fsyncMu first issues one fsync covering every append flushed so far,
// and the writers behind it observe synced >= their position and
// return without touching the disk.
type stripe struct {
	idx   int
	dir   string
	store *Store

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	seq      uint64
	minSeq   uint64 // lowest segment still on disk
	garbage  int    // superseded records still occupying this stripe's log
	err      error  // first append/sync failure, sticky
	closed   bool
	appends  uint64 // append calls flushed to the OS, monotone
	tornTail bool   // Open truncated a torn final record in this stripe
	buf      []byte // append scratch, under mu

	compactions uint64 // completed snapshot rewrites, under mu
	compactErr  error  // latest background-compaction failure, under mu

	fsyncMu sync.Mutex
	synced  uint64 // appends covered by the last fsync; under fsyncMu

	compactMu sync.Mutex    // serializes compaction with itself
	kick      chan struct{} // nudges the compactor; buffered, size 1
}

// sortSeqs orders segment sequence numbers ascending.
func sortSeqs(seqs []uint64) {
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
}

// recover replays this stripe's snapshot + segments into the store's
// shared memory and opens the last segment for appending (creating
// segment 1 in a fresh stripe directory). Single-threaded: only Open
// calls it, before any writer exists.
func (st *stripe) recover() error {
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			// Leftover of a snapshot write that crashed before rename;
			// never referenced, safe to discard.
			_ = os.Remove(filepath.Join(st.dir, e.Name()))
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sortSeqs(seqs)

	mem := st.store.mem
	snapPath := filepath.Join(st.dir, snapshotName)
	if _, err := os.Stat(snapPath); err == nil {
		if _, err := replayFile(snapPath, func(rec storage.Record) { mem.Insert(rec) }); err != nil {
			if err == errTorn {
				return fmt.Errorf("%w: snapshot %s", ErrCorrupt, snapPath)
			}
			return fmt.Errorf("wal: replaying snapshot: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("wal: %w", err)
	}

	replayInsert := func(rec storage.Record) {
		if !mem.Insert(rec) {
			st.garbage++ // superseded an earlier log entry
		}
	}
	for i, seq := range seqs {
		path := filepath.Join(st.dir, segmentName(seq))
		validEnd, err := replayFile(path, replayInsert)
		switch {
		case err == nil:
		case err == errTorn && i == len(seqs)-1:
			// Torn tail of a crashed append: keep everything before it,
			// truncate the rest so appends resume from a clean frame
			// boundary. A zero-length or headerless file (crash between
			// create and header write) truncates to empty and the
			// header is rewritten below.
			if err := os.Truncate(path, validEnd); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			st.tornTail = true
		case err == errTorn:
			return fmt.Errorf("%w: segment %s", ErrCorrupt, path)
		default:
			return fmt.Errorf("wal: replaying %s: %w", path, err)
		}
	}

	st.seq, st.minSeq = 1, 1
	if n := len(seqs); n > 0 {
		st.seq, st.minSeq = seqs[n-1], seqs[0]
	}
	return st.openSegmentLocked(st.seq)
}

// openSegmentLocked opens segment seq for appending, writing the file
// header if the file is new (or was truncated to empty). Callers hold
// st.mu (or are the single-threaded recovery).
//
// The header is flushed but deliberately not fsynced here: openSegment
// runs under st.mu (rotation swings appends to the new segment with
// the stripe locked), and an fsync there would stall every writer of
// the stripe on device latency. Durability does not need it. A
// headerless or empty file can only ever be the stripe's newest
// segment — rotation seals (fsyncs) the old segment before creating
// the next one — and recovery truncates a headerless newest segment to
// empty and rewrites the header. The first group-commit fsync on the
// new file covers the header along with the appends it acknowledges.
func (st *stripe) openSegmentLocked(seq uint64) error {
	path := filepath.Join(st.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if fi.Size() == 0 {
		if _, err := w.Write(fileHeader()); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	st.f, st.w = f, w
	return nil
}

// appendLocked frames recs into the active segment and flushes them to
// the OS. It returns the stripe's append position (the value to hand
// syncTo for a durable acknowledgement). Failures are sticky: the
// first one is kept and every later append degrades to memory-only
// (reported by Err/Sync/Close). Callers hold st.mu.
func (st *stripe) appendLocked(recs ...storage.Record) uint64 {
	if st.err != nil || st.closed {
		return st.appends
	}
	st.buf = st.buf[:0]
	for _, rec := range recs {
		st.buf = appendFrame(st.buf, rec)
	}
	if _, err := st.w.Write(st.buf); err != nil {
		st.err = fmt.Errorf("wal: append: %w", err)
		return st.appends
	}
	if err := st.w.Flush(); err != nil {
		st.err = fmt.Errorf("wal: append: %w", err)
		return st.appends
	}
	st.appends++
	return st.appends
}

// syncTo makes every append up to position n durable and returns the
// stripe's sticky error state. It is the group-commit point: if a
// concurrent caller's fsync already covered n, it returns without
// touching the disk; otherwise it issues one fsync that covers every
// append flushed so far — its own and those of the writers queued
// behind it. Rotation holds fsyncMu too, so the file being synced can
// never be swapped out (and closed) underneath an in-flight fsync.
func (st *stripe) syncTo(n uint64) error {
	st.fsyncMu.Lock()
	defer st.fsyncMu.Unlock()
	st.mu.Lock()
	err, closed := st.err, st.closed
	f, m := st.f, st.appends
	st.mu.Unlock()
	if err != nil {
		return err
	}
	if st.synced >= n {
		return nil
	}
	if closed {
		return errors.New("wal: store closed")
	}
	if serr := f.Sync(); serr != nil {
		st.mu.Lock()
		if st.err == nil {
			st.err = fmt.Errorf("wal: fsync: %w", serr)
		}
		err := st.err
		st.mu.Unlock()
		return err
	}
	st.synced = m
	return nil
}

// sync flushes this stripe's buffered appends and fsyncs them — the
// Store.Sync barrier, per stripe.
func (st *stripe) sync() error {
	st.mu.Lock()
	if st.err != nil {
		err := st.err
		st.mu.Unlock()
		return err
	}
	if st.closed {
		st.mu.Unlock()
		return errors.New("wal: store closed")
	}
	if err := st.w.Flush(); err != nil {
		st.err = fmt.Errorf("wal: flush: %w", err)
		err = st.err
		st.mu.Unlock()
		return err
	}
	n := st.appends
	st.mu.Unlock()
	return st.syncTo(n)
}

// maybeKickLocked nudges this stripe's compactor when its garbage
// crosses the (per-stripe) thresholds. Callers hold st.mu; the shard
// length read takes the memory shard's read lock, which is always
// acquired after stripe mutexes (see the lock order above).
func (st *stripe) maybeKickLocked() {
	o := st.store.opts
	if o.CompactMinGarbage <= 0 || st.garbage < o.CompactMinGarbage {
		return
	}
	total := st.garbage + st.store.mem.ShardLen(st.idx)
	if float64(st.garbage) < o.CompactGarbageFraction*float64(total) {
		return
	}
	select {
	case st.kick <- struct{}{}:
	default:
	}
}

// close seals the stripe: flush and mark closed under mu, then fsync
// and close the segment under fsyncMu alone — the same split the
// append path uses, so a slow device never holds the stripe mutex
// hostage, and stripes close in parallel. Marking closed under mu
// first means any writer arriving after the flush appends nothing;
// fsyncMu serializes the final fsync with an in-flight group commit,
// so the file cannot be closed underneath one. Returns the stripe's
// sticky error state; safe to call once (Close's closeMu guards it).
func (st *stripe) close() error {
	st.mu.Lock()
	if st.closed {
		err := st.err
		st.mu.Unlock()
		return err
	}
	st.closed = true
	if flushErr := st.w.Flush(); flushErr != nil && st.err == nil {
		st.err = fmt.Errorf("wal: flush: %w", flushErr)
	}
	f := st.f
	st.mu.Unlock()

	st.fsyncMu.Lock()
	var sealErr error
	if syncErr := f.Sync(); syncErr != nil {
		sealErr = fmt.Errorf("wal: fsync: %w", syncErr)
	}
	if closeErr := f.Close(); closeErr != nil && sealErr == nil {
		sealErr = fmt.Errorf("wal: close: %w", closeErr)
	}
	st.fsyncMu.Unlock()

	st.mu.Lock()
	if sealErr != nil && st.err == nil {
		st.err = sealErr
	}
	err := st.err
	st.mu.Unlock()
	return err
}
