package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/pglp/panda/internal/server/storage"
)

// The MANIFEST is the authority on a data directory's shape. It is a
// two-line text file written atomically (tmp + rename + directory
// fsync) exactly once, when the directory is first laid out:
//
//	panda-wal-manifest v2
//	stripes <N>
//
// Its job is to make mis-sharding impossible: records are routed to
// stripes by storage.ShardFor(user, N), so opening an N-stripe
// directory as if it had M stripes would replay every record into the
// right memory shard (replay routes by the record itself) but compact
// each stripe against the wrong shard's contents, silently dropping
// records from disk on the next segment deletion. Open therefore
// refuses a stripe-count mismatch with ErrStripeMismatch instead of
// guessing. Directories from before the striped layout ("v1": a bare
// snapshot.dat + wal-*.log in the directory root, no MANIFEST) are
// migrated on first Open; see migrateLegacy.
const (
	manifestName    = "MANIFEST"
	manifestVersion = 2
)

// ErrStripeMismatch reports that a data directory's MANIFEST pins a
// different stripe count than Options.Shards requested. Nothing has
// been touched: reopen with the MANIFEST's count (wal.Manifest reads
// it), or restripe offline (see PERSISTENCE.md).
var ErrStripeMismatch = errors.New("wal: stripe count mismatch")

// Manifest reads dir's MANIFEST and returns its stripe count. ok is
// false (with a nil error) when the directory has no MANIFEST — a
// fresh directory, or a legacy single-log layout that Open will
// migrate. A malformed or future-versioned MANIFEST is an error.
func Manifest(dir string) (stripes int, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("wal: reading manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) > 0 && strings.HasPrefix(lines[0], "panda-lsm-manifest") {
		return 0, false, fmt.Errorf("wal: %s is an LSM (kv) data dir (its MANIFEST says %q); open it with the kv backend (-backend=kv)", dir, lines[0])
	}
	if len(lines) != 2 {
		return 0, false, fmt.Errorf("wal: malformed manifest in %s", dir)
	}
	var ver int
	if _, err := fmt.Sscanf(strings.TrimSpace(lines[0]), "panda-wal-manifest v%d", &ver); err != nil {
		return 0, false, fmt.Errorf("wal: malformed manifest in %s", dir)
	}
	if ver != manifestVersion {
		return 0, false, fmt.Errorf("wal: manifest version v%d in %s not supported (this build reads v%d)", ver, dir, manifestVersion)
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(lines[1]), "stripes %d", &stripes); err != nil || stripes < 1 {
		return 0, false, fmt.Errorf("wal: malformed manifest in %s", dir)
	}
	return stripes, true, nil
}

// writeManifest atomically creates dir's MANIFEST. It is the commit
// point of both a fresh layout and a legacy migration: once the rename
// lands (and the directory is fsynced), every later Open trusts the
// stripe snapshots and ignores — deletes — leftover legacy files.
func writeManifest(dir string, stripes int) error {
	body := fmt.Sprintf("panda-wal-manifest v%d\nstripes %d\n", manifestVersion, stripes)
	return writeFileAtomic(dir, manifestName, []byte(body))
}

// writeFileAtomic writes name into dir via tmp + fsync + rename +
// directory fsync, so the file is either absent or complete — never
// torn — regardless of where a crash lands.
func writeFileAtomic(dir, name string, body []byte) error {
	tmpPath := filepath.Join(dir, name+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmpPath)
		return err
	}
	return syncDir(dir)
}

// stripeDirName formats the subdirectory of stripe i.
func stripeDirName(i int) string { return fmt.Sprintf("stripe-%03d", i) }

// legacyLayout reports the pre-stripe ("v1") files in dir's root: the
// segment sequence numbers and whether a root snapshot.dat exists.
func legacyLayout(dir string) (seqs []uint64, hasSnap bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false, err
	}
	for _, e := range entries {
		if e.Name() == snapshotName {
			hasSnap = true
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sortSeqs(seqs)
	return seqs, hasSnap, nil
}

// migrateLegacy rewrites a pre-stripe data directory (one root log +
// snapshot) as the striped layout, preserving record contents exactly.
// The crash-safety argument, step by step:
//
//  1. Replay the legacy snapshot + segments into a scratch memory
//     store, tolerating a torn tail in the final segment exactly like
//     a normal recovery (damage elsewhere is ErrCorrupt). The legacy
//     files are not modified.
//  2. Write each stripe's snapshot.dat (atomically, fsynced) from the
//     scratch store's matching memory shard. Stale files from an
//     earlier crashed migration attempt are simply overwritten; stray
//     segments inside stripe directories are deleted first (they can
//     only exist if an operator moved files by hand — no append ever
//     ran without a MANIFEST).
//  3. Write the MANIFEST — the commit point. A crash before this line
//     leaves the legacy files authoritative and the next Open redoes
//     the migration from step 1; a crash after it leaves the stripe
//     snapshots authoritative.
//  4. Delete the legacy files. A crash mid-deletion leaves leftovers
//     that the next Open (seeing the MANIFEST) deletes — their every
//     record is already in the stripe snapshots.
//
// It returns whether the legacy log ended in a torn record, so Open
// can surface it in Stats like a normal torn-tail recovery.
func migrateLegacy(dir string, stripes int, seqs []uint64, hasSnap bool) (tornTail bool, err error) {
	scratch := storage.NewSharded(stripes)
	if hasSnap {
		snapPath := filepath.Join(dir, snapshotName)
		if _, err := replayFile(snapPath, func(rec storage.Record) { scratch.Insert(rec) }); err != nil {
			if err == errTorn {
				return false, fmt.Errorf("%w: snapshot %s", ErrCorrupt, snapPath)
			}
			return false, fmt.Errorf("wal: migrating legacy snapshot: %w", err)
		}
	}
	for i, seq := range seqs {
		path := filepath.Join(dir, segmentName(seq))
		_, err := replayFile(path, func(rec storage.Record) { scratch.Insert(rec) })
		switch {
		case err == nil:
		case err == errTorn && i == len(seqs)-1:
			tornTail = true
		case err == errTorn:
			return false, fmt.Errorf("%w: segment %s", ErrCorrupt, path)
		default:
			return false, fmt.Errorf("wal: migrating %s: %w", path, err)
		}
	}

	for i := 0; i < stripes; i++ {
		sd := filepath.Join(dir, stripeDirName(i))
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return false, fmt.Errorf("wal: migrating: %w", err)
		}
		// Stray segments here would later replay over the fresh
		// snapshot; with the legacy files still authoritative they
		// hold nothing of value, so clear them.
		entries, err := os.ReadDir(sd)
		if err != nil {
			return false, fmt.Errorf("wal: migrating: %w", err)
		}
		for _, e := range entries {
			if _, ok := parseSegmentName(e.Name()); ok || strings.HasSuffix(e.Name(), ".tmp") {
				if err := os.Remove(filepath.Join(sd, e.Name())); err != nil {
					return false, fmt.Errorf("wal: migrating: %w", err)
				}
			}
		}
		var body []byte
		body = append(body, fileHeader()...)
		var frame []byte
		scratch.ScanShard(i, func(rec storage.Record) bool {
			frame = appendFrame(frame[:0], rec)
			body = append(body, frame...)
			return true
		})
		if err := writeFileAtomic(sd, snapshotName, body); err != nil {
			return false, fmt.Errorf("wal: migrating stripe %d: %w", i, err)
		}
	}

	if err := writeManifest(dir, stripes); err != nil {
		return false, fmt.Errorf("wal: migrating: %w", err)
	}
	if err := removeLegacy(dir, seqs, hasSnap); err != nil {
		return false, err
	}
	return tornTail, nil
}

// removeLegacy deletes the pre-stripe root files after (or on an Open
// after) a committed migration, then fsyncs the directory.
func removeLegacy(dir string, seqs []uint64, hasSnap bool) error {
	if len(seqs) == 0 && !hasSnap {
		return nil
	}
	for _, seq := range seqs {
		if err := os.Remove(filepath.Join(dir, segmentName(seq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: removing migrated legacy segment: %w", err)
		}
	}
	if hasSnap {
		if err := os.Remove(filepath.Join(dir, snapshotName)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: removing migrated legacy snapshot: %w", err)
		}
	}
	return syncDir(dir)
}
