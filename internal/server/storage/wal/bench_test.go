package wal

// Durability-cost benchmarks: what does the WAL charge per Put on top
// of the in-memory stores, in buffered and fsync-per-write modes? Run
// alongside the storage benchmarks in CI:
//
//	go test -bench=. ./internal/server/storage/...
//
// Representative numbers (tmpfs-backed CI runners will flatter fsync;
// see API.md for a local-disk run): buffered appends cost low single-
// digit microseconds over memStore, fsync-per-write costs whatever the
// device's flush latency is — typically 100x-1000x, which is why batch
// ingestion (one fsync per batch) is the intended durable write path.

import (
	"testing"

	"github.com/pglp/panda/internal/server/storage"
)

func benchInsert(b *testing.B, s storage.Store) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rec(i%1000, i/1000, i%64))
	}
}

func benchInsertBatch(b *testing.B, s storage.Store, batch int) {
	b.Helper()
	recs := make([]storage.Record, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j] = rec(j%1000, i, (i+j)%64)
		}
		s.InsertBatch(recs)
		b.SetBytes(int64(batch * frameSize))
	}
}

func BenchmarkInsertMem(b *testing.B)     { benchInsert(b, storage.NewMemStore()) }
func BenchmarkInsertSharded(b *testing.B) { benchInsert(b, storage.NewShardedStore(16)) }

func BenchmarkInsertWALBuffered(b *testing.B) {
	s := mustOpenB(b, Options{CompactMinGarbage: -1})
	defer s.Close()
	benchInsert(b, s)
}

func BenchmarkInsertWALFsync(b *testing.B) {
	s := mustOpenB(b, Options{Sync: SyncAlways, CompactMinGarbage: -1})
	defer s.Close()
	benchInsert(b, s)
}

func BenchmarkInsertBatch100Mem(b *testing.B) { benchInsertBatch(b, storage.NewMemStore(), 100) }

func BenchmarkInsertBatch100WALBuffered(b *testing.B) {
	s := mustOpenB(b, Options{CompactMinGarbage: -1})
	defer s.Close()
	benchInsertBatch(b, s, 100)
}

func BenchmarkInsertBatch100WALFsync(b *testing.B) {
	s := mustOpenB(b, Options{Sync: SyncAlways, CompactMinGarbage: -1})
	defer s.Close()
	benchInsertBatch(b, s, 100)
}

// BenchmarkReplay measures recovery speed: how fast Open rebuilds
// memory from a 100k-record log.
func BenchmarkReplay100k(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{CompactMinGarbage: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		s.Insert(rec(i%1000, i/1000, i%64))
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := Open(dir, Options{CompactMinGarbage: -1})
		if err != nil {
			b.Fatal(err)
		}
		if back.Len() != 100_000 {
			b.Fatalf("replayed %d records", back.Len())
		}
		if err := back.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func mustOpenB(b *testing.B, opts Options) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
