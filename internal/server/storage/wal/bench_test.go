package wal

// Durability-cost benchmarks: what does the WAL charge per Put on top
// of the in-memory stores, in buffered and fsync-per-write modes? Run
// alongside the storage benchmarks in CI:
//
//	go test -bench=. ./internal/server/storage/...
//
// Representative numbers (tmpfs-backed CI runners will flatter fsync;
// see API.md for a local-disk run): buffered appends cost low single-
// digit microseconds over memStore, fsync-per-write costs whatever the
// device's flush latency is — typically 100x-1000x, which is why batch
// ingestion (one fsync per batch) is the intended durable write path.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/pglp/panda/internal/server/storage"
)

func benchInsert(b *testing.B, s storage.Store) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(rec(i%1000, i/1000, i%64))
	}
}

func benchInsertBatch(b *testing.B, s storage.Store, batch int) {
	b.Helper()
	recs := make([]storage.Record, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j] = rec(j%1000, i, (i+j)%64)
		}
		s.InsertBatch(recs)
		b.SetBytes(int64(batch * frameSize))
	}
}

func BenchmarkInsertMem(b *testing.B)     { benchInsert(b, storage.NewMemStore()) }
func BenchmarkInsertSharded(b *testing.B) { benchInsert(b, storage.NewShardedStore(16)) }

func BenchmarkInsertWALBuffered(b *testing.B) {
	s := mustOpenB(b, Options{CompactMinGarbage: -1})
	defer s.Close()
	benchInsert(b, s)
}

func BenchmarkInsertWALFsync(b *testing.B) {
	s := mustOpenB(b, Options{Sync: SyncAlways, CompactMinGarbage: -1})
	defer s.Close()
	benchInsert(b, s)
}

func BenchmarkInsertBatch100Mem(b *testing.B) { benchInsertBatch(b, storage.NewMemStore(), 100) }

func BenchmarkInsertBatch100WALBuffered(b *testing.B) {
	s := mustOpenB(b, Options{CompactMinGarbage: -1})
	defer s.Close()
	benchInsertBatch(b, s, 100)
}

func BenchmarkInsertBatch100WALFsync(b *testing.B) {
	s := mustOpenB(b, Options{Sync: SyncAlways, CompactMinGarbage: -1})
	defer s.Close()
	benchInsertBatch(b, s, 100)
}

// Stripe-scaling benchmarks: concurrent durable batch inserts, each
// goroutine confined to one stripe (the shape a shard-partitioned
// drain worker or a per-user client fleet produces), at 1/4/8
// stripes. This is the headline number of the striped WAL — fsync
// batch throughput growing with stripes because each stripe fsyncs on
// its own mutex, with group commit absorbing same-stripe contention.
// CI records it as the bench-wal-stripes.txt artifact; PERSISTENCE.md
// keeps a measured table.
func benchStripedBatch(b *testing.B, stripes int, sync Sync) {
	b.Helper()
	s := mustOpenB(b, Options{Shards: stripes, Sync: sync, CompactMinGarbage: -1})
	defer s.Close()
	const batch = 100
	var gid atomic.Int64
	// Ensure at least 8 writer goroutines so every stripe sees
	// contention even on small machines: fsyncs overlap in the kernel
	// on one P (a goroutine blocked in fsync releases it). RunParallel
	// spawns parallelism*GOMAXPROCS goroutines, so machines with more
	// cores run more writers — compare trend lines per machine, not
	// across machines.
	if p := runtime.GOMAXPROCS(0); p < 8 {
		b.SetParallelism((8 + p - 1) / p)
	}
	b.ReportAllocs()
	b.SetBytes(int64(batch * frameSize))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1) - 1)
		// Every user of goroutine g routes to stripe g%stripes, and no
		// two goroutines share a user: distinct (g, j) give distinct
		// base+stripes*(g*batch+j).
		base := g % stripes
		recs := make([]storage.Record, batch)
		t := 0
		for pb.Next() {
			for j := range recs {
				recs[j] = rec(base+stripes*(g*batch+j), t, (t+j)%64)
			}
			s.InsertBatch(recs)
			t++
		}
	})
}

func BenchmarkStripedBatch100Fsync(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("stripes=%d", n), func(b *testing.B) {
			benchStripedBatch(b, n, SyncAlways)
		})
	}
}

func BenchmarkStripedBatch100Buffered(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("stripes=%d", n), func(b *testing.B) {
			benchStripedBatch(b, n, SyncBuffered)
		})
	}
}

// BenchmarkReplay measures recovery speed: how fast Open rebuilds
// memory from a 100k-record log.
func BenchmarkReplay100k(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{CompactMinGarbage: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		s.Insert(rec(i%1000, i/1000, i%64))
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := Open(dir, Options{CompactMinGarbage: -1})
		if err != nil {
			b.Fatal(err)
		}
		if back.Len() != 100_000 {
			b.Fatalf("replayed %d records", back.Len())
		}
		if err := back.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func mustOpenB(b *testing.B, opts Options) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	return s
}
