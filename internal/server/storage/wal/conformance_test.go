package wal_test

import (
	"testing"

	"github.com/pglp/panda/internal/server/storage"
	"github.com/pglp/panda/internal/server/storage/storagetest"
	"github.com/pglp/panda/internal/server/storage/wal"
)

// The WAL passes the shared Store conformance battery (storagetest) —
// durability must never change Store semantics. Compaction thresholds
// are lowered so the battery's write volume also exercises background
// compaction racing the readers.
func TestWALConformance(t *testing.T) {
	storagetest.TestStore(t, func(t *testing.T) storage.Store {
		s, err := wal.Open(t.TempDir(), wal.Options{
			Shards:            4,
			CompactMinGarbage: 64,
		})
		if err != nil {
			t.Fatalf("wal.Open: %v", err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("wal.Close: %v", err)
			}
		})
		return s
	})
}
