package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/pglp/panda/internal/server/storage"
)

const (
	// fileMagic opens every snapshot and segment file; fileVersion is
	// bumped on incompatible format changes.
	fileMagic   = "PWAL"
	fileVersion = uint32(1)
	headerSize  = 8

	// The record framing is the shared storage codec — the same frames
	// the binary wire format (application/x-panda-records) ships, so a
	// binary batch needs no re-encoding between socket and stripe.
	payloadSize = storage.PayloadSize
	frameSize   = storage.FrameSize
)

// ErrCorrupt reports damage that replay cannot attribute to a torn
// append: a bad frame in the snapshot or in a non-final segment, or a
// file that does not start with the expected header.
var ErrCorrupt = errors.New("wal: corrupt file")

// appendFrame appends the framed encoding of rec to buf (the shared
// storage codec).
func appendFrame(buf []byte, rec storage.Record) []byte {
	return storage.AppendFrame(buf, rec)
}

// fileHeader returns the 8-byte header opening every wal-owned file.
func fileHeader() []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	return hdr
}

// errTorn is the internal sentinel replayFile returns when it hits an
// invalid frame: the caller decides whether that is a tolerable torn
// tail (final segment) or corruption (anywhere else).
var errTorn = errors.New("wal: invalid frame")

// replayFile reads path and calls fn for every valid record, in file
// order. It returns the byte offset just past the last valid frame and,
// when the file ends in an invalid frame (or an invalid/short header),
// errTorn. Any other error is an I/O failure.
func replayFile(path string, fn func(storage.Record)) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errTorn
		}
		return 0, err
	}
	if string(hdr[:4]) != fileMagic || binary.LittleEndian.Uint32(hdr[4:]) != fileVersion {
		return 0, errTorn
	}
	validEnd = headerSize

	frame := make([]byte, frameSize)
	for {
		_, err := io.ReadFull(r, frame[:8])
		if err == io.EOF {
			return validEnd, nil
		}
		if err == io.ErrUnexpectedEOF {
			return validEnd, errTorn
		}
		if err != nil {
			return validEnd, err
		}
		if binary.LittleEndian.Uint32(frame[0:]) != payloadSize {
			return validEnd, errTorn
		}
		if _, err := io.ReadFull(r, frame[8:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return validEnd, errTorn
			}
			return validEnd, err
		}
		rec, ok := storage.DecodeFrame(frame)
		if !ok {
			return validEnd, errTorn
		}
		fn(rec)
		validEnd += frameSize
	}
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSegmentName extracts the sequence number from a segment file
// name, reporting whether the name is a segment at all.
func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err != nil {
		return 0, false
	}
	if name != segmentName(seq) {
		return 0, false
	}
	return seq, true
}
