package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

const (
	// fileMagic opens every snapshot and segment file; fileVersion is
	// bumped on incompatible format changes.
	fileMagic   = "PWAL"
	fileVersion = uint32(1)
	headerSize  = 8

	// payloadSize is the fixed binary encoding of one storage.Record:
	// user, t, cell, policy version as int64 plus the released point's
	// two float64 coordinates.
	payloadSize = 48
	frameSize   = 8 + payloadSize // length + crc + payload
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum most log-structured stores frame with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports damage that replay cannot attribute to a torn
// append: a bad frame in the snapshot or in a non-final segment, or a
// file that does not start with the expected header.
var ErrCorrupt = errors.New("wal: corrupt file")

// appendFrame appends the framed encoding of rec to buf.
func appendFrame(buf []byte, rec storage.Record) []byte {
	var payload [payloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:], uint64(int64(rec.User)))
	binary.LittleEndian.PutUint64(payload[8:], uint64(int64(rec.T)))
	binary.LittleEndian.PutUint64(payload[16:], math.Float64bits(rec.Point.X))
	binary.LittleEndian.PutUint64(payload[24:], math.Float64bits(rec.Point.Y))
	binary.LittleEndian.PutUint64(payload[32:], uint64(int64(rec.Cell)))
	binary.LittleEndian.PutUint64(payload[40:], uint64(int64(rec.PolicyVersion)))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], payloadSize)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload[:], castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:]...)
}

// decodePayload is the inverse of the payload encoding in appendFrame.
func decodePayload(p []byte) storage.Record {
	return storage.Record{
		User: int(int64(binary.LittleEndian.Uint64(p[0:]))),
		T:    int(int64(binary.LittleEndian.Uint64(p[8:]))),
		Point: geo.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
			math.Float64frombits(binary.LittleEndian.Uint64(p[24:])),
		),
		Cell:          int(int64(binary.LittleEndian.Uint64(p[32:]))),
		PolicyVersion: int(int64(binary.LittleEndian.Uint64(p[40:]))),
	}
}

// fileHeader returns the 8-byte header opening every wal-owned file.
func fileHeader() []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	return hdr
}

// errTorn is the internal sentinel replayFile returns when it hits an
// invalid frame: the caller decides whether that is a tolerable torn
// tail (final segment) or corruption (anywhere else).
var errTorn = errors.New("wal: invalid frame")

// replayFile reads path and calls fn for every valid record, in file
// order. It returns the byte offset just past the last valid frame and,
// when the file ends in an invalid frame (or an invalid/short header),
// errTorn. Any other error is an I/O failure.
func replayFile(path string, fn func(storage.Record)) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errTorn
		}
		return 0, err
	}
	if string(hdr[:4]) != fileMagic || binary.LittleEndian.Uint32(hdr[4:]) != fileVersion {
		return 0, errTorn
	}
	validEnd = headerSize

	frame := make([]byte, frameSize)
	for {
		_, err := io.ReadFull(r, frame[:8])
		if err == io.EOF {
			return validEnd, nil
		}
		if err == io.ErrUnexpectedEOF {
			return validEnd, errTorn
		}
		if err != nil {
			return validEnd, err
		}
		if binary.LittleEndian.Uint32(frame[0:]) != payloadSize {
			return validEnd, errTorn
		}
		if _, err := io.ReadFull(r, frame[8:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return validEnd, errTorn
			}
			return validEnd, err
		}
		if crc32.Checksum(frame[8:], castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
			return validEnd, errTorn
		}
		fn(decodePayload(frame[8:]))
		validEnd += frameSize
	}
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseSegmentName extracts the sequence number from a segment file
// name, reporting whether the name is a segment at all.
func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err != nil {
		return 0, false
	}
	if name != segmentName(seq) {
		return 0, false
	}
	return seq, true
}
