package lsm

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/pglp/panda/internal/server/storage"
)

// The crash harness: simulated crashes are byte-exact file states — a
// baseline directory is built once, then rewritten per scenario with
// one file truncated, corrupted, added or removed, and Open must either
// recover exactly the committed prefix or refuse with ErrCorrupt.
// Nothing here sleeps or kills processes; every state a crash could
// leave is constructed directly.

// dirFiles lists a store directory's file names, sorted.
func dirFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// readAll loads every file in dir into a name -> bytes map.
func readAll(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, name := range dirFiles(t, dir) {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = b
	}
	return out
}

// writeAll materializes a name -> bytes map as a fresh directory.
func writeAll(t *testing.T, files map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, b := range files {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// baselineRunAndLog builds the canonical crash-test state — one
// committed run of 6 records (users 0..5 at t=0) plus 10 live-log
// records (users 0..9 at t=1) — and returns its files. All keys are
// distinct so recovered counts compose by addition.
func baselineRunAndLog(t *testing.T) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir, noAuto)
	for u := 0; u < 6; u++ {
		s.Insert(rec(u, 0, 100+u))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		s.Insert(rec(u, 1, 200+u))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	files := readAll(t, dir)
	wantLog := headerSize + 10*frameSize
	if got := len(files[logName(2)]); got != wantLog {
		t.Fatalf("baseline log is %d bytes, want %d", got, wantLog)
	}
	if got := len(files[runName(1)]); got != headerSize+6*frameSize {
		t.Fatalf("baseline run is %d bytes, want %d", got, headerSize+6*frameSize)
	}
	return files
}

// TestLogTornTailEveryOffset is the acked-implies-durable core: the
// live log truncated at EVERY byte offset must open, recover the run
// plus exactly the fully-framed log prefix before the cut, flag the
// torn tail, and accept + persist new appends. Any record whose append
// was acknowledged under SyncAlways was fsynced, i.e. lies before any
// crash cut — so "recovers exactly the frame prefix" is precisely
// "never loses an acknowledged write".
func TestLogTornTailEveryOffset(t *testing.T) {
	files := baselineRunAndLog(t)
	full := files[logName(2)]
	for cut := 0; cut <= len(full); cut++ {
		crashed := make(map[string][]byte, len(files))
		for name, b := range files {
			crashed[name] = b
		}
		crashed[logName(2)] = full[:cut]
		dir := writeAll(t, crashed)

		back, err := Open(dir, noAuto)
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wantRecs := 0
		if cut >= headerSize {
			wantRecs = (cut - headerSize) / frameSize
		}
		if back.Len() != 6+wantRecs {
			back.Close()
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, back.Len(), 6+wantRecs)
		}
		// A cut exactly on a frame boundary is not torn; anywhere else is.
		torn := cut != len(full) && cut != headerSize+wantRecs*frameSize
		if got := back.Stats().TornTail; got != torn {
			back.Close()
			t.Fatalf("cut=%d: TornTail=%v, want %v", cut, got, torn)
		}
		// The truncated store must accept and persist new appends.
		back.Insert(rec(50, 2, 1))
		if err := back.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		again := mustOpen(t, dir, noAuto)
		if again.Len() != 6+wantRecs+1 {
			t.Fatalf("cut=%d: after re-append recovered %d, want %d", cut, again.Len(), 6+wantRecs+1)
		}
		again.Close()
	}
}

// TestRunTruncationEveryOffsetRejected: a sealed run is written
// atomically, so no crash can legitimately shorten it — truncation at
// EVERY byte offset must be refused as corruption, never silently
// absorbed. Cuts on exact frame boundaries pass frame validation and
// are caught by the record count the MANIFEST pinned.
func TestRunTruncationEveryOffsetRejected(t *testing.T) {
	files := baselineRunAndLog(t)
	full := files[runName(1)]
	for cut := 0; cut < len(full); cut++ {
		crashed := make(map[string][]byte, len(files))
		for name, b := range files {
			crashed[name] = b
		}
		crashed[runName(1)] = full[:cut]
		dir := writeAll(t, crashed)
		if _, err := Open(dir, noAuto); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: Open = %v, want ErrCorrupt", cut, err)
		}
	}
	// Sanity: the untruncated baseline opens.
	s := mustOpen(t, writeAll(t, files), noAuto)
	defer s.Close()
	if s.Len() != 16 {
		t.Fatalf("baseline recovered %d records, want 16", s.Len())
	}
}

// TestManifestTruncationEveryOffsetRejected: the MANIFEST is replaced
// atomically, so a short MANIFEST is damage, and a damaged MANIFEST
// must never be "repaired" by guessing — it silently disowns committed
// runs. Truncation at EVERY byte offset must refuse with ErrCorrupt.
func TestManifestTruncationEveryOffsetRejected(t *testing.T) {
	files := baselineRunAndLog(t)
	full := files[manifestName]
	for cut := 0; cut < len(full); cut++ {
		crashed := make(map[string][]byte, len(files))
		for name, b := range files {
			crashed[name] = b
		}
		crashed[manifestName] = full[:cut]
		dir := writeAll(t, crashed)
		if _, err := Open(dir, noAuto); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: Open = %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestManifestBitFlipRejected: the ok-line checksum catches content
// damage that keeps the line structure intact.
func TestManifestBitFlipRejected(t *testing.T) {
	files := baselineRunAndLog(t)
	m := append([]byte(nil), files[manifestName]...)
	// Flip a digit inside the "run 1 6" record count.
	idx := strings.Index(string(m), "run 1 6")
	if idx < 0 {
		t.Fatalf("baseline MANIFEST missing run line:\n%s", m)
	}
	m[idx+6] = '7'
	files[manifestName] = m
	if _, err := Open(writeAll(t, files), noAuto); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestUncommittedRunDeleted: a crash between the run rename and the
// MANIFEST commit leaves an unlisted run file. Open must delete it and
// replay the still-live logs — the flush never happened.
func TestUncommittedRunDeleted(t *testing.T) {
	files := baselineRunAndLog(t)
	// Manufacture the orphan: a run file the MANIFEST does not list,
	// holding the same records the live log still covers.
	orphanDir := t.TempDir()
	if err := writeRun(orphanDir, runName(9), []storage.Record{rec(0, 1, 999)}); err != nil {
		t.Fatal(err)
	}
	files[runName(9)] = readAll(t, orphanDir)[runName(9)]
	dir := writeAll(t, files)

	back := mustOpen(t, dir, noAuto)
	if back.Len() != 16 {
		back.Close()
		t.Fatalf("recovered %d records, want 16", back.Len())
	}
	// The orphan's value must NOT have won over the log's.
	if r := back.UserRecords(0); r[1].Cell != 200 {
		back.Close()
		t.Fatalf("user 0 t=1 cell %d, want 200 (orphan run replayed!)", r[1].Cell)
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, runName(9))); !os.IsNotExist(err) {
		t.Fatalf("uncommitted run still present (err=%v)", err)
	}
}

// TestStaleLogDeletedWithoutReplay: a crash between the MANIFEST commit
// and the absorbed-log deletion leaves a log whose seq <= flushed. Its
// records were sorted into a run that may since have been superseded —
// replaying it would resurrect old values — so Open must delete it
// unread.
func TestStaleLogDeletedWithoutReplay(t *testing.T) {
	// Manufacture the state directly: a committed run holding the NEW
	// value, plus a stale log still holding the OLD value for the key.
	runDir := t.TempDir()
	if err := writeRun(runDir, runName(1), []storage.Record{rec(1, 0, 9)}); err != nil {
		t.Fatal(err)
	}
	staleLog := fileHeader(logMagic)
	staleLog = storage.AppendFrame(staleLog, rec(1, 0, 7)) // the superseded value
	files := map[string][]byte{
		runName(1): readAll(t, runDir)[runName(1)],
		logName(1): staleLog,
	}
	dir := writeAll(t, files)
	if err := writeManifest(dir, manifest{flushed: 1, runs: []runInfo{{seq: 1, records: 1}}}); err != nil {
		t.Fatal(err)
	}

	back := mustOpen(t, dir, noAuto)
	if back.Len() != 1 {
		back.Close()
		t.Fatalf("recovered %d records, want 1", back.Len())
	}
	if r := back.UserRecords(1); r[0].Cell != 9 {
		back.Close()
		t.Fatalf("user 1 t=0 cell %d, want 9 (stale log resurrected the old value)", r[0].Cell)
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, logName(1))); !os.IsNotExist(err) {
		t.Fatalf("stale log still present (err=%v)", err)
	}
}

// TestSyncAlwaysAckedSurvivesCrash: under SyncAlways every return from
// Insert means "on stable storage". Copying the directory while the
// store is still open (no Close, no final seal) is the crash; the copy
// must replay every acknowledged record.
func TestSyncAlwaysAckedSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Sync: SyncAlways, MemtableRecords: -1, MaxRuns: -1})
	const n = 25
	for i := 0; i < n; i++ {
		s.Insert(rec(i, 0, i))
	}
	// Crash: snapshot the directory with the store still open.
	crashed := writeAll(t, readAll(t, dir))
	back := mustOpen(t, crashed, noAuto)
	if back.Len() != n {
		t.Fatalf("crash copy recovered %d records, want %d (acked write lost)", back.Len(), n)
	}
	back.Close()
	s.Close()
}

// TestFilesWithoutManifestRefused: log or run files with no MANIFEST
// mean the authority on committed state is gone. Guessing could replay
// stale logs or adopt uncommitted runs; Open must refuse.
func TestFilesWithoutManifestRefused(t *testing.T) {
	files := baselineRunAndLog(t)
	delete(files, manifestName)
	if _, err := Open(writeAll(t, files), noAuto); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestMissingListedRunRefused: the MANIFEST lists a run that is gone —
// committed data is missing and no recovery can invent it.
func TestMissingListedRunRefused(t *testing.T) {
	files := baselineRunAndLog(t)
	delete(files, runName(1))
	if _, err := Open(writeAll(t, files), noAuto); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestOutOfOrderRunRejected: run frames must be strictly ascending by
// (user, t); an out-of-order run (disk damage that still frames
// correctly) is corruption.
func TestOutOfOrderRunRejected(t *testing.T) {
	body := fileHeader(runMagic)
	body = storage.AppendFrame(body, rec(5, 0, 1))
	body = storage.AppendFrame(body, rec(3, 0, 2)) // out of order
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, runName(1)), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(dir, manifest{flushed: 0, runs: []runInfo{{seq: 1, records: 2}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, noAuto); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestTornMidLogRejected: a torn frame is tolerable only in the NEWEST
// log — in an older live log it breaks the append order linearization
// and must be corruption.
func TestTornMidLogRejected(t *testing.T) {
	older := fileHeader(logMagic)
	older = storage.AppendFrame(older, rec(1, 0, 1))
	older = older[:len(older)-10] // torn tail in a non-final log
	newer := fileHeader(logMagic)
	newer = storage.AppendFrame(newer, rec(2, 0, 2))
	dir := writeAll(t, map[string][]byte{
		logName(1): older,
		logName(2): newer,
	})
	if err := writeManifest(dir, manifest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, noAuto); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

// TestWALDirRefusedUnmodified: pointing the lsm backend at a WAL data
// directory must refuse with an error naming the fix, and must not
// touch a single file — the WAL store stays intact.
func TestWALDirRefusedUnmodified(t *testing.T) {
	// A WAL layout is a MANIFEST with the WAL magic plus stripe dirs;
	// build a faithful minimal one by hand (importing the wal package
	// here would be an import cycle risk for none of the coverage).
	dir := t.TempDir()
	manifestBody := "panda-wal-manifest v1\nstripes 2\n"
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(manifestBody), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"stripe-0000", "stripe-0001"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	before := dirFiles(t, dir)

	_, err := Open(dir, noAuto)
	if err == nil {
		t.Fatal("Open succeeded on a WAL data dir")
	}
	if !strings.Contains(err.Error(), "-backend=wal") {
		t.Fatalf("error %q does not name the fix (-backend=wal)", err)
	}
	if got := dirFiles(t, dir); len(got) != len(before) {
		t.Fatalf("refusal modified the dir: %v -> %v", before, got)
	}
	if b, _ := os.ReadFile(filepath.Join(dir, "MANIFEST")); string(b) != manifestBody {
		t.Fatal("refusal modified the WAL MANIFEST")
	}

	// The stripe-dir check alone must also refuse, even without a
	// readable WAL MANIFEST (legacy/partial states).
	dir2 := t.TempDir()
	if err := writeManifest(dir2, manifest{}); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir2, "stripe-0000"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, noAuto); err == nil || !strings.Contains(err.Error(), "-backend=wal") {
		t.Fatalf("Open = %v, want stripe-dir refusal naming -backend=wal", err)
	}

	// Legacy single-file WAL layouts (snapshot.dat / wal-*.log) too.
	dir3 := t.TempDir()
	if err := writeManifest(dir3, manifest{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir3, "snapshot.dat"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir3, noAuto); err == nil || !strings.Contains(err.Error(), "-backend=wal") {
		t.Fatalf("Open = %v, want legacy-layout refusal naming -backend=wal", err)
	}
}

// TestTmpLeftoversCleaned: *.tmp files are un-renamed atomic writes —
// deleted on open, never adopted.
func TestTmpLeftoversCleaned(t *testing.T) {
	files := baselineRunAndLog(t)
	files["MANIFEST.tmp"] = []byte("half-written garbage")
	files[runName(7)+".tmp"] = []byte{0xde, 0xad}
	dir := writeAll(t, files)
	back := mustOpen(t, dir, noAuto)
	if back.Len() != 16 {
		back.Close()
		t.Fatalf("recovered %d records, want 16", back.Len())
	}
	back.Close()
	for _, name := range dirFiles(t, dir) {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("%s survived recovery", name)
		}
	}
}

// TestWrongMagicRejected: a run renamed over a log (or any file with
// the wrong magic in a log/run name) must not be replayed under the
// wrong tolerance rules.
func TestWrongMagicRejected(t *testing.T) {
	files := baselineRunAndLog(t)
	// Swap the run body's magic to the log magic: frames still decode,
	// but the header is wrong for a .sst name.
	run := append([]byte(nil), files[runName(1)]...)
	copy(run, logMagic)
	files[runName(1)] = run
	if _, err := Open(writeAll(t, files), noAuto); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}
