package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/pglp/panda/internal/server/storage"
)

const (
	// logMagic opens append logs, runMagic sorted runs; fileVersion is
	// bumped on incompatible format changes. Distinct magics mean a log
	// renamed over a run (or vice versa) is caught as corruption, not
	// replayed with the wrong tolerance rules.
	logMagic    = "PKVL"
	runMagic    = "PKVR"
	fileVersion = uint32(1)
	headerSize  = 8

	// The record framing is the shared storage codec — the same frames
	// the WAL and the binary wire format use, so records move between
	// backends without re-encoding.
	payloadSize = storage.PayloadSize
	frameSize   = storage.FrameSize
)

// ErrCorrupt reports damage that recovery cannot attribute to a torn
// append: a bad frame in a sealed run or a non-final log, out-of-order
// run keys, a run whose record count disagrees with the MANIFEST, or a
// file that does not start with the expected header.
var ErrCorrupt = errors.New("lsm: corrupt file")

// errTorn is the internal sentinel for an invalid frame: the caller
// decides whether that is a tolerable torn tail (final log) or
// corruption (anywhere else).
var errTorn = errors.New("lsm: invalid frame")

// fileHeader returns the 8-byte header opening every lsm-owned file.
func fileHeader(magic string) []byte {
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	return hdr
}

// logName formats the file name of append log seq.
func logName(seq uint64) string { return fmt.Sprintf("log-%016d.log", seq) }

// runName formats the file name of sorted run seq.
func runName(seq uint64) string { return fmt.Sprintf("run-%016d.sst", seq) }

// parseLogName extracts the sequence number from a log file name,
// reporting whether the name is a log at all.
func parseLogName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "log-%d.log", &seq); err != nil {
		return 0, false
	}
	if name != logName(seq) {
		return 0, false
	}
	return seq, true
}

// parseRunName extracts the sequence number from a run file name,
// reporting whether the name is a run at all.
func parseRunName(name string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(name, "run-%d.sst", &seq); err != nil {
		return 0, false
	}
	if name != runName(seq) {
		return 0, false
	}
	return seq, true
}

// keyLess orders records by (user, t) — the sort key of every run.
func keyLess(u1, t1, u2, t2 int) bool {
	if u1 != u2 {
		return u1 < u2
	}
	return t1 < t2
}

// sortSeqs orders file sequence numbers ascending.
func sortSeqs(seqs []uint64) {
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
}

// replayFrames reads an 8-byte header then 56-byte frames from r,
// calling fn for each decoded record in file order. It returns the
// offset just past the last valid frame and errTorn when the stream
// ends in an invalid frame (or an invalid/short header); an error from
// fn aborts the replay and is returned as-is.
func replayFrames(r io.Reader, magic string, fn func(storage.Record) error) (validEnd int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errTorn
		}
		return 0, err
	}
	if string(hdr[:4]) != magic || binary.LittleEndian.Uint32(hdr[4:]) != fileVersion {
		return 0, errTorn
	}
	validEnd = headerSize

	frame := make([]byte, frameSize)
	for {
		_, err := io.ReadFull(br, frame[:8])
		if err == io.EOF {
			return validEnd, nil
		}
		if err == io.ErrUnexpectedEOF {
			return validEnd, errTorn
		}
		if err != nil {
			return validEnd, err
		}
		if binary.LittleEndian.Uint32(frame[0:]) != payloadSize {
			return validEnd, errTorn
		}
		if _, err := io.ReadFull(br, frame[8:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return validEnd, errTorn
			}
			return validEnd, err
		}
		rec, ok := storage.DecodeFrame(frame)
		if !ok {
			return validEnd, errTorn
		}
		if err := fn(rec); err != nil {
			return validEnd, err
		}
		validEnd += frameSize
	}
}

// replayLog reads the append log at path and calls fn for every valid
// record, in append order. It returns the byte offset just past the
// last valid frame and errTorn when the file ends in an invalid frame —
// the caller decides whether that is a tolerable torn tail (newest log)
// or corruption.
func replayLog(path string, fn func(storage.Record)) (validEnd int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return replayFrames(f, logMagic, func(rec storage.Record) error {
		fn(rec)
		return nil
	})
}

// readRun decodes a sealed run from r, calling fn for each record in
// key order, and returns the record count. Nothing about a sealed run
// is tolerable: runs are written atomically, so a bad header, an
// invalid frame, a truncated tail, or keys that are not strictly
// ascending by (user, t) all return an error wrapping ErrCorrupt. fn
// may be nil. fn may be called before a later error is detected; run
// replay feeds a store that is discarded on error, so that is safe.
func readRun(r io.Reader, fn func(storage.Record)) (records int, err error) {
	var lastU, lastT int
	_, err = replayFrames(r, runMagic, func(rec storage.Record) error {
		if records > 0 && !keyLess(lastU, lastT, rec.User, rec.T) {
			return fmt.Errorf("%w: run keys out of order at record %d", ErrCorrupt, records)
		}
		lastU, lastT = rec.User, rec.T
		records++
		if fn != nil {
			fn(rec)
		}
		return nil
	})
	if err == errTorn {
		return records, fmt.Errorf("%w: truncated or invalid run frame after %d records", ErrCorrupt, records)
	}
	return records, err
}

// replayRun reads the run at path, verifies it holds exactly
// wantRecords records (the count its MANIFEST entry pinned — which
// catches truncation at exact frame boundaries, invisible to frame
// validation alone), and calls fn for each record in key order.
func replayRun(path string, wantRecords int, fn func(storage.Record)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("lsm: replaying run: %w", err)
	}
	defer f.Close()
	n, err := readRun(f, fn)
	if err != nil {
		return fmt.Errorf("run %s: %w", path, err)
	}
	if n != wantRecords {
		return fmt.Errorf("%w: run %s holds %d records, MANIFEST says %d", ErrCorrupt, path, n, wantRecords)
	}
	return nil
}

// sortDedupe sorts recs by (user, t) and collapses duplicate keys,
// keeping the latest occurrence — the memtable's replace-on-(user,t)
// semantics, applied at flush time so runs never need tombstones. The
// sort is stable, so "latest" means latest in append order. The input
// slice is reused.
func sortDedupe(recs []storage.Record) []storage.Record {
	sort.SliceStable(recs, func(i, j int) bool {
		return keyLess(recs[i].User, recs[i].T, recs[j].User, recs[j].T)
	})
	out := recs[:0]
	for _, rec := range recs {
		if n := len(out); n > 0 && out[n-1].User == rec.User && out[n-1].T == rec.T {
			out[n-1] = rec
		} else {
			out = append(out, rec)
		}
	}
	return out
}

// runWriter streams a new run to <name>.tmp and commits it atomically
// (fsync + rename + directory fsync), so a run file, once visible under
// its final name, is always complete.
type runWriter struct {
	dir, name string
	tmpPath   string
	f         *os.File
	w         *bufio.Writer
	frame     []byte
}

// newRunWriter opens the temp file and writes the run header.
func newRunWriter(dir, name string) (*runWriter, error) {
	tmpPath := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lsm: writing run: %w", err)
	}
	rw := &runWriter{dir: dir, name: name, tmpPath: tmpPath, f: f, w: bufio.NewWriterSize(f, 1<<16)}
	if _, err := rw.w.Write(fileHeader(runMagic)); err != nil {
		rw.abort()
		return nil, fmt.Errorf("lsm: writing run: %w", err)
	}
	return rw, nil
}

// add frames one record into the run. Callers feed records in strictly
// ascending (user, t) order; readRun enforces it on the way back in.
func (rw *runWriter) add(rec storage.Record) error {
	rw.frame = storage.AppendFrame(rw.frame[:0], rec)
	if _, err := rw.w.Write(rw.frame); err != nil {
		return fmt.Errorf("lsm: writing run: %w", err)
	}
	return nil
}

// commit flushes, fsyncs and renames the run into place.
func (rw *runWriter) commit() error {
	err := rw.w.Flush()
	if err == nil {
		err = rw.f.Sync()
	}
	if closeErr := rw.f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(rw.tmpPath)
		return fmt.Errorf("lsm: writing run: %w", err)
	}
	if err := os.Rename(rw.tmpPath, filepath.Join(rw.dir, rw.name)); err != nil {
		_ = os.Remove(rw.tmpPath)
		return fmt.Errorf("lsm: writing run: %w", err)
	}
	if err := storage.SyncDir(rw.dir); err != nil {
		return fmt.Errorf("lsm: writing run: %w", err)
	}
	return nil
}

// abort discards the temp file.
func (rw *runWriter) abort() {
	rw.f.Close()
	_ = os.Remove(rw.tmpPath)
}

// writeRun atomically writes recs (already sorted and deduplicated) as
// run file name in dir.
func writeRun(dir, name string, recs []storage.Record) error {
	rw, err := newRunWriter(dir, name)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := rw.add(rec); err != nil {
			rw.abort()
			return err
		}
	}
	return rw.commit()
}

// mergeRuns k-way merges runs (listed oldest first) into a single new
// run file seq and returns its record count. On key collisions the
// record from the newest run wins — the same last-write-wins rule the
// memtable applies — so the merged run is equivalent to replaying the
// inputs in order. Sources stream through fixed-size buffers; nothing
// is materialized.
func mergeRuns(dir string, runs []runInfo, seq uint64) (records int, err error) {
	type src struct {
		ri   runInfo
		f    *os.File
		r    *bufio.Reader
		head storage.Record
		ok   bool
		read int
		// lastU/lastT back the strictly-ascending check per source.
		lastU, lastT int
	}
	srcs := make([]*src, 0, len(runs))
	defer func() {
		for _, s := range srcs {
			s.f.Close()
		}
	}()

	frame := make([]byte, frameSize)
	advance := func(s *src) error {
		_, err := io.ReadFull(s.r, frame)
		if err == io.EOF {
			if s.read != s.ri.records {
				return fmt.Errorf("%w: run %s holds %d records, MANIFEST says %d", ErrCorrupt, runName(s.ri.seq), s.read, s.ri.records)
			}
			s.ok = false
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: run %s: truncated frame", ErrCorrupt, runName(s.ri.seq))
		}
		rec, ok := storage.DecodeFrame(frame)
		if !ok {
			return fmt.Errorf("%w: run %s: invalid frame", ErrCorrupt, runName(s.ri.seq))
		}
		if s.read > 0 && !keyLess(s.lastU, s.lastT, rec.User, rec.T) {
			return fmt.Errorf("%w: run %s: keys out of order", ErrCorrupt, runName(s.ri.seq))
		}
		s.lastU, s.lastT = rec.User, rec.T
		s.read++
		s.head, s.ok = rec, true
		return nil
	}

	for _, ri := range runs {
		f, err := os.Open(filepath.Join(dir, runName(ri.seq)))
		if err != nil {
			return 0, fmt.Errorf("lsm: merging runs: %w", err)
		}
		s := &src{ri: ri, f: f, r: bufio.NewReaderSize(f, 1<<16)}
		srcs = append(srcs, s)
		hdr := make([]byte, headerSize)
		if _, err := io.ReadFull(s.r, hdr); err != nil || string(hdr[:4]) != runMagic || binary.LittleEndian.Uint32(hdr[4:]) != fileVersion {
			return 0, fmt.Errorf("%w: run %s: bad header", ErrCorrupt, runName(ri.seq))
		}
		if err := advance(s); err != nil {
			return 0, err
		}
	}

	rw, err := newRunWriter(dir, runName(seq))
	if err != nil {
		return 0, err
	}
	for {
		best := -1
		for i, s := range srcs {
			if !s.ok {
				continue
			}
			if best == -1 || keyLess(s.head.User, s.head.T, srcs[best].head.User, srcs[best].head.T) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		ku, kt := srcs[best].head.User, srcs[best].head.T
		var out storage.Record
		// Visit sources oldest→newest so the newest holder of the key
		// decides the record, and advance every holder past it.
		for _, s := range srcs {
			if s.ok && s.head.User == ku && s.head.T == kt {
				out = s.head
				if err := advance(s); err != nil {
					rw.abort()
					return 0, err
				}
			}
		}
		if err := rw.add(out); err != nil {
			rw.abort()
			return 0, err
		}
		records++
	}
	if err := rw.commit(); err != nil {
		return 0, err
	}
	return records, nil
}
