// Package lsm is a durable storage.Store shaped like a small LSM tree:
// an in-memory memtable over the sharded store, one append log for
// durability, and sorted-run SSTable files keyed by (user, t) in the
// shared 48-byte record codec. It is the second real backend behind
// the Store seam (PERSISTENCE.md documents the first, the striped
// WAL), selected as `panda-server -backend=kv`.
//
// Shape of the directory:
//
//	MANIFEST                 committed state (flushed seq + run list)
//	log-<seq>.log            append logs; the highest seq is active
//	run-<seq>.sst            sorted runs, replayed oldest→newest
//
// Every write appends a frame to the active log (the write-ahead step
// that makes acknowledgements durable) and updates the memtable. When
// the memtable passes Options.MemtableRecords, a background flush
// seals the log, sorts and deduplicates its records by (user, t) —
// replace-on-(user, t) needs no tombstones: the newest record for a
// key simply wins — and writes them as a new immutable run; when more
// than Options.MaxRuns runs accumulate, they are k-way merged into
// one. Reads never touch the files: like the WAL, the full record set
// lives in the memtable's sharded memory, so Store reads (At,
// ScanRange, Gen, Epoch, …) are exactly the sharded store's.
//
// Where the WAL parallelizes appends across per-shard stripes, the lsm
// store serializes them on one log and spends its disk budget on
// sorted immutable runs instead: reopen replays sorted runs + a short
// log tail rather than every segment, and disk amplification is
// bounded by the merge schedule instead of per-stripe snapshot
// garbage. The backend benchmark matrix (bench-backends.txt in CI)
// quantifies the trade.
//
// Locking, in acquisition order (never acquire leftwards):
//
//	fsyncMu → mu → (memory shard locks, inside storage.Sharded)
//
// mu guards the append path and orders log appends identically to the
// memtable inserts — replay correctness needs the log to be a
// linearization of the memory writes. fsyncMu serializes fsync with
// itself and with log rotation and is deliberately NOT held during
// appends: writers append+flush under mu, release it, then group
// commit under fsyncMu exactly like a WAL stripe. flushMu serializes
// flush and merge with each other (the background maintainer and the
// exported Flush/Compact).
package lsm

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/pglp/panda/internal/server/storage"
)

// Sync selects when appends reach stable storage; the zero value is
// SyncBuffered.
type Sync int

const (
	// SyncBuffered flushes appends to the OS on every write but leaves
	// fsync to flush, rotation, Sync and Close. A process crash loses
	// nothing; an OS crash or power cut may lose a suffix of
	// acknowledged writes.
	SyncBuffered Sync = iota
	// SyncAlways fsyncs before acknowledging a write (group commit:
	// concurrent writers share one fsync). An acknowledged write
	// survives power loss.
	SyncAlways
)

// Defaults for Options zero values.
const (
	defaultMemtableRecords = 8192
	defaultMaxRuns         = 4
)

// Options configure Open.
type Options struct {
	// Shards is the memory fan-out (storage.NewSharded). Unlike the
	// WAL's stripe count it is NOT pinned on disk — the lsm layout is
	// shard-agnostic — so a directory can be reopened with any value.
	// Values < 1 mean 1.
	Shards int
	// Sync selects the durability policy; see the Sync constants.
	Sync Sync
	// MemtableRecords is the flush threshold: when at least this many
	// records sit in the active log(s), the background maintainer
	// seals them into a sorted run. 0 means the default (8192);
	// negative disables automatic flushing (tests use this and call
	// Flush explicitly).
	MemtableRecords int
	// MaxRuns is the merge trigger: when more than this many runs
	// exist after a flush, they are merged into one. 0 means the
	// default (4); negative disables automatic merging.
	MaxRuns int
}

// Stats is a point-in-time observation of the store's disk state.
type Stats struct {
	LiveRecords     int    // records in memory (== storage.Store.Len)
	MemtableRecords int    // records in live logs awaiting flush (incl. superseded)
	Runs            int    // committed sorted runs
	RunRecords      int    // records across committed runs
	Garbage         int    // superseded records still occupying disk (runs + logs)
	ActiveLog       uint64 // sequence of the log currently appended to
	Flushes         uint64 // memtable flushes since Open
	Compactions     uint64 // run merges since Open
	TornTail        bool   // whether Open truncated a torn final record
	CompactErr      error  // latest background flush/merge failure, nil once recovered
}

// errClosed reports use of a closed store.
var errClosed = errors.New("lsm: store closed")

// Store is a durable storage.Store; see the package comment for the
// design. The zero value is not usable — call Open.
//
// Crash-safety contract, in terms of what survives where:
//
//   - After Insert/InsertBatch returns under SyncAlways, the records
//     are on stable storage (the log was fsynced) and a crash or
//     power cut replays them. Under SyncBuffered they are in the OS
//     page cache: a process crash keeps them, a power cut may drop a
//     suffix.
//   - A batch is appended as consecutive log frames; a crash may
//     durably keep a prefix of them (partial-batch semantics, the
//     same contract as the WAL). Batch atomicity is a property of the
//     in-memory view — the grouped memtable insert — never of crash
//     recovery.
//   - After Sync returns nil, everything appended so far is durable.
//   - After Close returns nil, everything is durable and the
//     directory may be reopened.
//   - Flush and merge commits are atomic (run write + MANIFEST
//     rename); a crash at any byte leaves either the old state or the
//     new state authoritative, never a blend.
//
// The storage.Store interface has no error returns, so append
// failures (disk full, I/O errors) cannot surface per-write: the
// store records its first such error, keeps serving memory, and
// reports it from Err, Sync and Close. Background flush/merge
// failures are retried and reported from CompactErr; they never void
// acknowledged durability — the log simply keeps growing.
type Store struct {
	dir  string
	opts Options
	mem  *storage.Sharded

	mu          sync.Mutex
	f           *os.File
	w           *bufio.Writer
	buf         []byte           // append scratch, under mu
	logSeq      uint64           // active log sequence
	flushedSeq  uint64           // logs <= flushedSeq are absorbed into runs
	pending     []storage.Record // memtable mirror of the live logs, append order
	runs        []runInfo        // committed runs, oldest first (mirror of MANIFEST)
	nextRun     uint64           // next run sequence to allocate
	appends     uint64           // append calls flushed to the OS, monotone
	err         error            // first append/sync failure, sticky
	closed      bool
	tornTail    bool   // Open truncated a torn final record
	flushes     uint64 // completed memtable flushes
	compactions uint64 // completed run merges
	compactErr  error  // latest background flush/merge failure

	fsyncMu sync.Mutex
	synced  uint64 // appends covered by the last fsync; under fsyncMu

	// flushMu serializes flush and merge with each other; it is never
	// held while mu-protected appends are blocked for longer than a
	// log rotation.
	flushMu sync.Mutex

	kick chan struct{} // nudges the maintainer; buffered, size 1

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// Open creates or recovers an lsm store in dir. Existing state is
// replayed into memory: committed runs oldest→newest (each verified
// against the record count its MANIFEST entry pinned), then live logs
// in sequence order. A torn final record in the newest log is
// truncated away; damage anywhere else returns an error wrapping
// ErrCorrupt. Uncommitted leftovers of a crashed flush or merge
// (unlisted run files, logs already absorbed into runs, *.tmp files)
// are deleted. A directory laid out by the WAL backend is refused
// with a clear error — nothing is modified in that case.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.MemtableRecords == 0 {
		opts.MemtableRecords = defaultMemtableRecords
	}
	if opts.MaxRuns == 0 {
		opts.MaxRuns = defaultMaxRuns
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		mem:  storage.NewSharded(opts.Shards),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if opts.MemtableRecords > 0 || opts.MaxRuns > 0 {
		s.wg.Add(1)
		go s.maintainLoop()
	}
	return s, nil
}

// recover loads the directory into memory and opens the active log.
// Single-threaded: only Open calls it, before any writer exists.
func (s *Store) recover() error {
	m, ok, err := readManifest(s.dir)
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	var logSeqs, runSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Leftover of an atomic write that crashed before rename;
			// never referenced, safe to discard.
			_ = os.Remove(filepath.Join(s.dir, name))
		case e.IsDir() && strings.HasPrefix(name, "stripe-"):
			return fmt.Errorf("lsm: %s is a WAL data dir (stripe directories present); open it with the wal backend (-backend=wal)", s.dir)
		case name == "snapshot.dat" || (strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")):
			return fmt.Errorf("lsm: %s is a legacy WAL data dir (%s present); open it with the wal backend (-backend=wal)", s.dir, name)
		default:
			if seq, isLog := parseLogName(name); isLog {
				logSeqs = append(logSeqs, seq)
			} else if seq, isRun := parseRunName(name); isRun {
				runSeqs = append(runSeqs, seq)
			}
		}
	}
	if !ok {
		if len(logSeqs) > 0 || len(runSeqs) > 0 {
			// Laying a fresh MANIFEST over existing files would guess at
			// which are committed; refusing is the only safe move.
			return fmt.Errorf("%w: %s has log/run files but no MANIFEST; restore the MANIFEST or recover from backup — see PERSISTENCE.md", ErrCorrupt, s.dir)
		}
		if err := writeManifest(s.dir, manifest{}); err != nil {
			return err
		}
	}

	// Uncommitted runs: leftovers of a flush/merge that crashed before
	// its MANIFEST rename. Their contents are still fully covered by
	// the files the MANIFEST does list.
	runsPresent := make(map[uint64]bool, len(runSeqs))
	for _, seq := range runSeqs {
		runsPresent[seq] = true
		if !m.hasRun(seq) {
			if err := os.Remove(filepath.Join(s.dir, runName(seq))); err != nil {
				return fmt.Errorf("lsm: removing uncommitted run: %w", err)
			}
		}
	}
	for _, ri := range m.runs {
		if !runsPresent[ri.seq] {
			return fmt.Errorf("%w: MANIFEST lists run %d but %s is missing", ErrCorrupt, ri.seq, runName(ri.seq))
		}
	}
	// Stale logs (seq <= flushed) are fully absorbed into runs and
	// must NOT be replayed: a merge may have collapsed newer values
	// over theirs, and replaying them would resurrect the old ones.
	var liveLogs []uint64
	for _, seq := range logSeqs {
		if seq <= m.flushed {
			if err := os.Remove(filepath.Join(s.dir, logName(seq))); err != nil {
				return fmt.Errorf("lsm: removing absorbed log: %w", err)
			}
		} else {
			liveLogs = append(liveLogs, seq)
		}
	}
	sortSeqs(liveLogs)
	if err := storage.SyncDir(s.dir); err != nil {
		return fmt.Errorf("lsm: %w", err)
	}

	for _, ri := range m.runs {
		if err := replayRun(filepath.Join(s.dir, runName(ri.seq)), ri.records, func(rec storage.Record) {
			s.mem.Insert(rec)
		}); err != nil {
			return err
		}
	}
	replayInsert := func(rec storage.Record) {
		s.mem.Insert(rec)
		s.pending = append(s.pending, rec)
	}
	for i, seq := range liveLogs {
		path := filepath.Join(s.dir, logName(seq))
		validEnd, err := replayLog(path, replayInsert)
		switch {
		case err == nil:
		case err == errTorn && i == len(liveLogs)-1:
			// Torn tail of a crashed append: keep everything before it,
			// truncate the rest so appends resume from a clean frame
			// boundary. A zero-length or headerless file truncates to
			// empty and the header is rewritten by openLogLocked.
			if err := os.Truncate(path, validEnd); err != nil {
				return fmt.Errorf("lsm: truncating torn tail: %w", err)
			}
			s.tornTail = true
		case err == errTorn:
			return fmt.Errorf("%w: log %s", ErrCorrupt, path)
		default:
			return fmt.Errorf("lsm: replaying %s: %w", path, err)
		}
	}

	s.flushedSeq = m.flushed
	s.runs = m.runs
	s.nextRun = 1
	if n := len(m.runs); n > 0 {
		s.nextRun = m.runs[n-1].seq + 1
	}
	s.logSeq = m.flushed + 1
	if n := len(liveLogs); n > 0 {
		s.logSeq = liveLogs[n-1]
	}
	return s.openLogLocked(s.logSeq)
}

// openLogLocked opens log seq for appending, writing the file header
// if the file is new (or was truncated to empty). Callers hold s.mu
// (or are the single-threaded recovery). Like the WAL's segment open,
// the header is flushed but deliberately not fsynced here: a
// headerless file can only ever be the newest log — flush seals
// (fsyncs) the old log before creating the next one — and recovery
// truncates a headerless newest log to empty.
func (s *Store) openLogLocked(seq uint64) error {
	path := filepath.Join(s.dir, logName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("lsm: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if fi.Size() == 0 {
		if _, err := w.Write(fileHeader(logMagic)); err != nil {
			f.Close()
			return fmt.Errorf("lsm: %w", err)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("lsm: %w", err)
		}
	}
	s.f, s.w = f, w
	return nil
}

// NumShards returns the memory shard count — the partition fan-out a
// drain layer should pin its workers to. Purely a memory property
// here: the disk layout is shard-agnostic.
func (s *Store) NumShards() int { return s.mem.NumShards() }

// appendLocked frames recs into the active log and flushes them to
// the OS, returning the append position to hand syncTo for a durable
// acknowledgement. Failures are sticky: the first one is kept and
// every later append degrades to memory-only (reported by
// Err/Sync/Close). Callers hold s.mu.
func (s *Store) appendLocked(recs ...storage.Record) uint64 {
	if s.err != nil || s.closed {
		return s.appends
	}
	s.buf = s.buf[:0]
	for _, rec := range recs {
		s.buf = storage.AppendFrame(s.buf, rec)
	}
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = fmt.Errorf("lsm: append: %w", err)
		return s.appends
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("lsm: append: %w", err)
		return s.appends
	}
	s.appends++
	return s.appends
}

// syncTo makes every append up to position n durable — the group
// commit point, identical in shape to a WAL stripe's: whichever
// writer reaches fsyncMu first issues one fsync covering every append
// flushed so far, and the writers queued behind it observe synced >=
// their position and return without touching the disk.
func (s *Store) syncTo(n uint64) error {
	s.fsyncMu.Lock()
	defer s.fsyncMu.Unlock()
	s.mu.Lock()
	err, closed := s.err, s.closed
	f, m := s.f, s.appends
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if s.synced >= n {
		return nil
	}
	if closed {
		return errClosed
	}
	if serr := f.Sync(); serr != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = fmt.Errorf("lsm: fsync: %w", serr)
		}
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.synced = m
	return nil
}

// maybeKickLocked nudges the maintainer when the memtable passes the
// flush threshold or the run count passes the merge trigger. Callers
// hold s.mu.
func (s *Store) maybeKickLocked() {
	needFlush := s.opts.MemtableRecords > 0 && len(s.pending) >= s.opts.MemtableRecords
	needMerge := s.opts.MaxRuns > 0 && len(s.runs) > s.opts.MaxRuns
	if !needFlush && !needMerge {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Insert appends the record to the log, then stores it in the
// memtable. Under SyncAlways it returns only after the log is fsynced
// (sharing the fsync with concurrent writers). It implements
// storage.Store.
func (s *Store) Insert(rec storage.Record) bool {
	s.mu.Lock()
	n := s.appendLocked(rec)
	added := s.mem.Insert(rec)
	s.pending = append(s.pending, rec)
	s.maybeKickLocked()
	s.mu.Unlock()
	if s.opts.Sync == SyncAlways {
		s.syncTo(n)
	}
	return added
}

// InsertBatch appends the batch as consecutive log frames (one flush),
// then stores it in memory atomically: the memtable apply locks every
// involved shard before inserting anything, so a concurrent Scan sees
// the whole batch or none of it. Under SyncAlways it fsyncs before
// returning. Note that crash recovery is per-record, not per-batch:
// see the partial-batch semantics on Store.
func (s *Store) InsertBatch(recs []storage.Record) int {
	if len(recs) == 0 {
		return 0
	}
	s.mu.Lock()
	n := s.appendLocked(recs...)
	added := s.mem.InsertBatch(recs)
	s.pending = append(s.pending, recs...)
	s.maybeKickLocked()
	s.mu.Unlock()
	if s.opts.Sync == SyncAlways {
		s.syncTo(n)
	}
	return added
}

// Len reports the stored record count; reads are served from the
// hydrated in-memory store, never the files.
func (s *Store) Len() int { return s.mem.Len() }

// MaxT reports the largest stored timestep (-1 if empty), from memory.
func (s *Store) MaxT() int { return s.mem.MaxT() }

// UserRecords returns one user's records in ascending T, from memory.
func (s *Store) UserRecords(user int) []storage.Record { return s.mem.UserRecords(user) }

// UserRecordsAfter returns up to limit records with T > afterT, from
// memory.
func (s *Store) UserRecordsAfter(user, afterT, limit int) []storage.Record {
	return s.mem.UserRecordsAfter(user, afterT, limit)
}

// Users returns the IDs with at least one record, ascending, from
// memory.
func (s *Store) Users() []int { return s.mem.Users() }

// At returns every user's record at timestep t, from memory.
func (s *Store) At(t int) []storage.Record { return s.mem.At(t) }

// Scan visits every record in a consistent point-in-time view, from
// memory; a concurrent InsertBatch is never half-visible.
func (s *Store) Scan(fn func(storage.Record) bool) { s.mem.Scan(fn) }

// ScanRange visits records with t0 <= T <= t1 in ascending T, from
// memory, with the same consistency as Scan.
func (s *Store) ScanRange(t0, t1 int, fn func(storage.Record) bool) {
	s.mem.ScanRange(t0, t1, fn)
}

// Gen returns timestep t's write generation, from memory. Like the
// WAL's, generations are process state: a restart replays records
// (rebuilding nonzero generations) but does not reproduce the
// previous process's counts — fine, because the caches they version
// are per-process too.
func (s *Store) Gen(t int) uint64 { return s.mem.Gen(t) }

// Epoch returns the global write generation, from memory; see Gen for
// the restart semantics.
func (s *Store) Epoch() uint64 { return s.mem.Epoch() }

// Err returns the first append or sync failure, if any. Once non-nil
// the log has stopped growing and only memory is being updated —
// durability is lost, and callers that require it should fail-stop
// (cmd/panda-server shuts down when this trips). Background
// flush/merge failures are reported separately (CompactErr): they
// leave the append path intact.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// CompactErr returns the latest background flush/merge failure, nil
// once the last maintenance cycle succeeded. Maintenance failures are
// retried on the next trigger and never void acknowledged
// durability — the log keeps growing until the cause clears.
func (s *Store) CompactErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactErr
}

// Sync flushes buffered appends to stable storage (a barrier for
// SyncBuffered mode: after a nil return, everything appended before
// the call survives power failure) and reports the first sticky
// append failure.
func (s *Store) Sync() error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	n := s.appends
	s.mu.Unlock()
	return s.syncTo(n)
}

// Stats returns a point-in-time observation of the store. Fields are
// sampled under the append mutex but concurrent maintenance may skew
// them — fine for monitoring, not a consistency point.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		LiveRecords:     s.mem.Len(),
		MemtableRecords: len(s.pending),
		Runs:            len(s.runs),
		ActiveLog:       s.logSeq,
		Flushes:         s.flushes,
		Compactions:     s.compactions,
		TornTail:        s.tornTail,
		CompactErr:      s.compactErr,
	}
	for _, ri := range s.runs {
		out.RunRecords += ri.records
	}
	// Every live record is on disk at least once; everything beyond
	// that — intra-log duplicates, keys superseded across runs — is
	// garbage a flush or merge will reclaim.
	out.Garbage = out.RunRecords + out.MemtableRecords - out.LiveRecords
	return out
}

// maintainLoop runs flushes and merges when kicked, until Close. A
// failed cycle is recorded as compactErr (visible in Stats and, if
// never recovered, from Close) but does not stop the append path: the
// log keeps growing and the next threshold crossing retries.
func (s *Store) maintainLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
		}
		s.maintain()
	}
}

// maintain runs one maintenance cycle: flush if the memtable is over
// threshold, then merge if the run count is over trigger.
func (s *Store) maintain() {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	var cycleErr error
	if s.opts.MemtableRecords > 0 {
		s.mu.Lock()
		full := len(s.pending) >= s.opts.MemtableRecords
		s.mu.Unlock()
		if full {
			cycleErr = s.flush()
		}
	}
	if cycleErr == nil && s.opts.MaxRuns > 0 {
		s.mu.Lock()
		over := len(s.runs) > s.opts.MaxRuns
		s.mu.Unlock()
		if over {
			cycleErr = s.merge()
		}
	}
	s.mu.Lock()
	s.compactErr = cycleErr
	s.mu.Unlock()
}

// Flush seals the memtable into a new sorted run: rotate the active
// log, sort+dedupe its records, write them as an immutable run, commit
// the MANIFEST, delete the absorbed logs. Appends are blocked only for
// the rotation, not for the sort or the run write. Exported for tests
// and operational tooling; the background maintainer calls the same
// path when the memtable passes Options.MemtableRecords.
func (s *Store) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.flush()
}

// flush is Flush without the flushMu acquisition. Callers hold
// flushMu.
//
// Crash-safety, step by step (PERSISTENCE.md spells out the same
// argument for operators):
//
//  1. Rotation seals the active log (flush + fsync + close) under
//     fsyncMu+mu and swings appends to a fresh log, so the sealed
//     records are exactly a prefix of the log order and nothing can
//     append to the sealed file afterwards.
//  2. The run is written to a temp file and renamed into place — a
//     crash before the MANIFEST commit leaves an unlisted run file
//     that the next Open deletes; the sealed logs are still live and
//     replay every record.
//  3. The MANIFEST rename is the commit point: it lists the new run
//     and advances flushed to the sealed sequence in one atomic step.
//  4. The absorbed logs are deleted. A crash mid-deletion leaves logs
//     with seq <= flushed, which the next Open deletes without
//     replay.
//
// On a non-crash failure (step 2 or 3 errors out), the sealed records
// are put back at the head of the memtable so the next flush retries
// them — without that, a later flush could advance the MANIFEST past
// the sealed log and the next Open would delete it unreplayed.
func (s *Store) flush() error {
	s.fsyncMu.Lock()
	s.mu.Lock()
	unlock := func() { s.mu.Unlock(); s.fsyncMu.Unlock() }
	if s.closed {
		unlock()
		return errClosed
	}
	if s.err != nil {
		// The log is missing appends; building a run from memory state
		// could commit records the log never saw. Keep the door shut.
		err := s.err
		unlock()
		return err
	}
	if len(s.pending) == 0 {
		unlock()
		return nil
	}
	if err := s.w.Flush(); err != nil {
		s.err = fmt.Errorf("lsm: flush: %w", err)
		err = s.err
		unlock()
		return err
	}
	//panda:allow fsynclock — rotation seals the active log: fsyncMu is already held, writers queue behind the swap by design, and the fsync doubles as their group commit
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("lsm: fsync: %w", err)
		err = s.err
		unlock()
		return err
	}
	if err := s.f.Close(); err != nil {
		s.err = fmt.Errorf("lsm: close: %w", err)
		err = s.err
		unlock()
		return err
	}
	sealedSeq := s.logSeq
	oldFlushed := s.flushedSeq
	recs := s.pending
	s.pending = nil
	s.logSeq++
	if err := s.openLogLocked(s.logSeq); err != nil {
		s.err = err
		unlock()
		return err
	}
	// Everything appended so far just hit stable storage.
	s.synced = s.appends
	runSeq := s.nextRun
	s.nextRun++
	oldRuns := append([]runInfo(nil), s.runs...)
	unlock()

	// restore puts the sealed records back at the memtable's head
	// after a failure, preserving append order relative to records
	// appended since the rotation.
	restore := func(recs []storage.Record) {
		s.mu.Lock()
		s.pending = append(recs, s.pending...)
		s.mu.Unlock()
	}

	recs = sortDedupe(recs)
	if err := writeRun(s.dir, runName(runSeq), recs); err != nil {
		restore(recs)
		return err
	}
	newRuns := append(oldRuns, runInfo{seq: runSeq, records: len(recs)})
	if err := writeManifest(s.dir, manifest{flushed: sealedSeq, runs: newRuns}); err != nil {
		_ = os.Remove(filepath.Join(s.dir, runName(runSeq)))
		restore(recs)
		return err
	}
	// Committed. The absorbed logs are dead weight from here on.
	for seq := oldFlushed + 1; seq <= sealedSeq; seq++ {
		if err := os.Remove(filepath.Join(s.dir, logName(seq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("lsm: removing absorbed log: %w", err)
		}
	}
	if err := storage.SyncDir(s.dir); err != nil {
		return fmt.Errorf("lsm: flush: %w", err)
	}

	s.mu.Lock()
	s.runs = newRuns
	s.flushedSeq = sealedSeq
	s.flushes++
	s.mu.Unlock()
	return nil
}

// Compact flushes the memtable and merges every committed run into
// one. Exported for tests and operational tooling; the background
// maintainer merges on the same path when more than Options.MaxRuns
// runs accumulate.
func (s *Store) Compact() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if err := s.flush(); err != nil {
		return err
	}
	return s.merge()
}

// merge k-way merges every committed run into one and commits the
// swap. Callers hold flushMu (which is what keeps s.runs and
// s.flushedSeq stable between the two mu critical sections). Appends
// are never blocked: merging reads immutable files and the commit is
// a MANIFEST rename.
func (s *Store) merge() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	runs := append([]runInfo(nil), s.runs...)
	flushed := s.flushedSeq
	if len(runs) < 2 {
		s.mu.Unlock()
		return nil
	}
	mergedSeq := s.nextRun
	s.nextRun++
	s.mu.Unlock()

	count, err := mergeRuns(s.dir, runs, mergedSeq)
	if err != nil {
		return err
	}
	merged := []runInfo{{seq: mergedSeq, records: count}}
	if err := writeManifest(s.dir, manifest{flushed: flushed, runs: merged}); err != nil {
		_ = os.Remove(filepath.Join(s.dir, runName(mergedSeq)))
		return err
	}
	for _, ri := range runs {
		if err := os.Remove(filepath.Join(s.dir, runName(ri.seq))); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("lsm: removing merged run: %w", err)
		}
	}
	if err := storage.SyncDir(s.dir); err != nil {
		return fmt.Errorf("lsm: merge: %w", err)
	}

	s.mu.Lock()
	s.runs = merged
	s.compactions++
	s.mu.Unlock()
	return nil
}

// Close stops the maintainer, then flushes, fsyncs and closes the
// active log. After a nil return the full store contents are durable
// and the directory may be reopened. The store must not be used
// afterwards; a second Close returns the sticky error state. An
// unrecovered background flush/merge failure is surfaced here if no
// harder error precedes it — the data itself is safe (the log kept
// growing).
func (s *Store) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()

	s.fsyncMu.Lock()
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		s.fsyncMu.Unlock()
		return err
	}
	s.closed = true
	if flushErr := s.w.Flush(); flushErr != nil && s.err == nil {
		s.err = fmt.Errorf("lsm: flush: %w", flushErr)
	}
	f := s.f
	s.mu.Unlock()

	var sealErr error
	if syncErr := f.Sync(); syncErr != nil {
		sealErr = fmt.Errorf("lsm: fsync: %w", syncErr)
	}
	if closeErr := f.Close(); closeErr != nil && sealErr == nil {
		sealErr = fmt.Errorf("lsm: close: %w", closeErr)
	}
	s.fsyncMu.Unlock()

	s.mu.Lock()
	if sealErr != nil && s.err == nil {
		s.err = sealErr
	}
	err := s.err
	if err == nil {
		err = s.compactErr
	}
	s.mu.Unlock()
	return err
}
