package lsm

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// The lsm store is a Store and a Durable — compile-time proof that the
// backend seam holds.
var (
	_ storage.Store   = (*Store)(nil)
	_ storage.Durable = (*Store)(nil)
)

// noAuto disables background flushing and merging so tests drive both
// explicitly via Flush and Compact.
var noAuto = Options{MemtableRecords: -1, MaxRuns: -1}

func rec(user, t, cell int) storage.Record {
	return storage.Record{
		User: user, T: t, Cell: cell,
		Point:         geo.Pt(float64(cell)+0.5, float64(user)+0.25),
		PolicyVersion: user % 3,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// collect scans a store into a (user, t) -> record map.
func collect(s storage.Store) map[[2]int]storage.Record {
	out := make(map[[2]int]storage.Record)
	s.Scan(func(r storage.Record) bool {
		out[[2]int{r.User, r.T}] = r
		return true
	})
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{Shards: shards, MemtableRecords: -1, MaxRuns: -1})
		for u := 0; u < 7; u++ {
			for ti := 0; ti < 20; ti++ {
				if !s.Insert(rec(u, ti, (u*7+ti)%64)) {
					t.Fatalf("Insert(%d,%d) reported replaced on fresh store", u, ti)
				}
			}
		}
		// Replacements must survive too: re-send user 3's history.
		for ti := 0; ti < 20; ti++ {
			s.Insert(rec(3, ti, 63-ti))
		}
		before := collect(s)
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		back := mustOpen(t, dir, Options{Shards: shards, MemtableRecords: -1, MaxRuns: -1})
		after := collect(back)
		if len(after) != len(before) {
			t.Fatalf("shards=%d: recovered %d records, want %d", shards, len(after), len(before))
		}
		for k, r := range before {
			if after[k] != r {
				t.Fatalf("shards=%d: key %v recovered %+v, want %+v", shards, k, after[k], r)
			}
		}
		if back.MaxT() != 19 || back.Len() != 7*20 {
			t.Fatalf("shards=%d: MaxT=%d Len=%d after recovery", shards, back.MaxT(), back.Len())
		}
		if got := back.UserRecords(3); got[0].Cell != 63 {
			t.Fatalf("replacement lost: user 3 t=0 cell %d, want 63", got[0].Cell)
		}
		back.Close()
	}
}

// TestFlushSealsRun: an explicit Flush moves the memtable into a sorted
// run, deletes the absorbed log, and survives reopen.
func TestFlushSealsRun(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, noAuto)
	for i := 0; i < 10; i++ {
		s.Insert(rec(i%4, i/4, i)) // includes replacements within the batch order
	}
	before := collect(s)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	st := s.Stats()
	if st.Runs != 1 || st.MemtableRecords != 0 || st.Flushes != 1 {
		t.Fatalf("after flush: %+v", st)
	}
	// The run holds the deduplicated set, so garbage is zero.
	if st.RunRecords != len(before) || st.Garbage != 0 {
		t.Fatalf("run records %d garbage %d, want %d and 0", st.RunRecords, st.Garbage, len(before))
	}
	if _, err := os.Stat(filepath.Join(dir, logName(1))); !os.IsNotExist(err) {
		t.Fatalf("absorbed log still present (err=%v)", err)
	}
	// Appends continue on the fresh log.
	s.Insert(rec(9, 9, 9))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, noAuto)
	defer back.Close()
	after := collect(back)
	if len(after) != len(before)+1 {
		t.Fatalf("recovered %d records, want %d", len(after), len(before)+1)
	}
	for k, r := range before {
		if after[k] != r {
			t.Fatalf("key %v recovered %+v, want %+v", k, after[k], r)
		}
	}
}

// TestCompactMergesRuns: repeated flushes with overlapping keys leave
// superseded records in old runs; Compact collapses everything into one
// run with zero garbage and no data change.
func TestCompactMergesRuns(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, noAuto)
	for round := 0; round < 3; round++ {
		for u := 0; u < 6; u++ {
			s.Insert(rec(u, round, 10*round+u))
			s.Insert(rec(u, 0, 100*round+u)) // resent every round: garbage fodder
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("round %d: Flush: %v", round, err)
		}
	}
	if st := s.Stats(); st.Runs != 3 || st.Garbage == 0 {
		t.Fatalf("before merge: %+v", st)
	}
	before := collect(s)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Runs != 1 || st.Garbage != 0 || st.Compactions != 1 {
		t.Fatalf("after merge: %+v", st)
	}
	if got := collect(s); len(got) != len(before) {
		t.Fatalf("merge changed record count: %d want %d", len(got), len(before))
	}
	// The winning value for the contested key (u, 0) is the last round's.
	if r := s.UserRecords(2); r[0].Cell != 202 {
		t.Fatalf("user 2 t=0 cell %d after merge, want 202", r[0].Cell)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, noAuto)
	defer back.Close()
	after := collect(back)
	for k, r := range before {
		if after[k] != r {
			t.Fatalf("key %v recovered %+v, want %+v", k, after[k], r)
		}
	}
}

// TestAutoMaintenance: crossing the memtable threshold triggers a
// background flush, and accumulating runs triggers a background merge,
// without any explicit call.
func TestAutoMaintenance(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{MemtableRecords: 32, MaxRuns: 2})
	defer s.Close()
	// Pace the writes in rounds, waiting out each flush: a single flush
	// absorbs everything pending, so runs only accumulate (and a merge
	// only triggers) when the threshold is crossed repeatedly.
	const rounds = 4
	for round := 0; round < rounds; round++ {
		for i := 0; i < 40; i++ {
			s.Insert(rec(i, round, i))
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.Stats().Flushes < uint64(round)+1 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: flush never ran: %+v", round, s.Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	st := s.Stats()
	if st.CompactErr != nil {
		t.Fatalf("CompactErr: %v", st.CompactErr)
	}
	// Four flushes with MaxRuns=2 force at least one merge (runs would
	// otherwise reach 4), and the merge keeps the run count bounded.
	if st.Compactions < 1 || st.Runs > 2 {
		t.Fatalf("merge never bounded the runs: %+v", st)
	}
	if s.Len() != rounds*40 {
		t.Fatalf("Len=%d under maintenance, want %d", s.Len(), rounds*40)
	}
}

// TestReopenDifferentShards: the disk layout pins no shard count, so a
// directory written with one fan-out reopens with any other.
func TestReopenDifferentShards(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Shards: 1, MemtableRecords: -1, MaxRuns: -1})
	for i := 0; i < 50; i++ {
		s.Insert(rec(i, i%5, i))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.Insert(rec(99, 0, 1)) // one record in the live log too
	before := collect(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, Options{Shards: 8, MemtableRecords: -1, MaxRuns: -1})
	defer back.Close()
	if back.NumShards() != 8 {
		t.Fatalf("NumShards=%d, want 8", back.NumShards())
	}
	after := collect(back)
	if len(after) != len(before) {
		t.Fatalf("recovered %d records, want %d", len(after), len(before))
	}
	for k, r := range before {
		if after[k] != r {
			t.Fatalf("key %v recovered %+v, want %+v", k, after[k], r)
		}
	}
}

// TestFreshDirAndReopenEmpty: opening a fresh directory writes a
// MANIFEST and an empty store round-trips.
func TestFreshDirAndReopenEmpty(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, noAuto)
	if s.Len() != 0 || s.MaxT() != -1 {
		t.Fatalf("fresh store Len=%d MaxT=%d", s.Len(), s.MaxT())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("no MANIFEST after open: %v", err)
	}
	back := mustOpen(t, dir, noAuto)
	if back.Len() != 0 {
		t.Fatalf("empty store recovered %d records", back.Len())
	}
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	// A second Close returns the sticky error state — nil after a clean
	// close — rather than re-sealing anything.
	if err := back.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestFlushFailureRestoresPending: when the run write fails (here: the
// temp file path is blocked by a directory), the sealed records go back
// to the memtable head so a retry — not a later flush of newer records —
// re-covers them. Without that, the MANIFEST could advance past a log
// that was never turned into a run, and reopen would delete it unreplayed.
func TestFlushFailureRestoresPending(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, noAuto)
	for i := 0; i < 10; i++ {
		s.Insert(rec(i, 0, i))
	}
	// Fault injection: the first flush writes run-1 via run-1.sst.tmp;
	// a directory squatting on that name fails the O_CREATE open.
	block := filepath.Join(dir, runName(1)+".tmp")
	if err := os.Mkdir(block, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil {
		t.Fatal("Flush succeeded with the temp path blocked")
	}
	if st := s.Stats(); st.MemtableRecords != 10 || st.Runs != 0 {
		t.Fatalf("after failed flush: %+v (sealed records not restored)", st)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("append path poisoned by flush failure: %v", err)
	}
	// The store keeps accepting writes, and the retry flushes everything.
	s.Insert(rec(50, 1, 1))
	if err := os.Remove(block); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("retry Flush: %v", err)
	}
	if st := s.Stats(); st.MemtableRecords != 0 || st.RunRecords != 11 {
		t.Fatalf("after retry: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	back := mustOpen(t, dir, noAuto)
	defer back.Close()
	if back.Len() != 11 {
		t.Fatalf("recovered %d records, want 11", back.Len())
	}
}
