package lsm

import (
	"bytes"
	"testing"

	"github.com/pglp/panda/internal/server/storage"
)

// FuzzSSTable drives the sealed-run decoder with arbitrary bytes. A run
// file is attacker-distance input in the sense that any disk damage
// ends up here, so the decoder must never panic and must accept ONLY
// byte-exact well-formed runs: header + whole frames + strictly
// ascending keys. On accept, the structural invariants the rest of
// recovery relies on are re-checked from the raw bytes.
func FuzzSSTable(f *testing.F) {
	// Seed corpus: empty, bare header, a small valid run, and damaged
	// variants of it (truncations, bit flips, reordered keys, wrong
	// magic) so the fuzzer starts at the interesting boundaries.
	valid := fileHeader(runMagic)
	for _, r := range []storage.Record{rec(1, 0, 3), rec(1, 2, 4), rec(5, 0, 9)} {
		valid = storage.AppendFrame(valid, r)
	}
	f.Add([]byte{})
	f.Add(fileHeader(runMagic))
	f.Add(fileHeader(logMagic))
	f.Add(append([]byte(nil), valid...))
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:headerSize+frameSize+5])
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+20] ^= 0x40
	f.Add(flipped)
	outOfOrder := fileHeader(runMagic)
	outOfOrder = storage.AppendFrame(outOfOrder, rec(5, 0, 9))
	outOfOrder = storage.AppendFrame(outOfOrder, rec(1, 0, 3))
	f.Add(outOfOrder)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []storage.Record
		n, err := readRun(bytes.NewReader(data), func(r storage.Record) {
			recs = append(recs, r)
		})
		if err != nil {
			return
		}
		// Accepted: the input must be byte-exact — a header plus whole
		// frames, nothing trailing.
		if want := headerSize + n*frameSize; len(data) != want {
			t.Fatalf("accepted %d bytes as a %d-record run (want exactly %d)", len(data), n, want)
		}
		if len(recs) != n {
			t.Fatalf("callback saw %d records, count says %d", len(recs), n)
		}
		if string(data[:4]) != runMagic {
			t.Fatalf("accepted magic %q", data[:4])
		}
		for i := 1; i < len(recs); i++ {
			if !keyLess(recs[i-1].User, recs[i-1].T, recs[i].User, recs[i].T) {
				t.Fatalf("accepted out-of-order keys at %d: %+v then %+v", i, recs[i-1], recs[i])
			}
		}
		// Round-trip: re-encoding the decoded records reproduces the
		// input bit-for-bit — the decoder inverted the encoder exactly.
		out := fileHeader(runMagic)
		for _, r := range recs {
			out = storage.AppendFrame(out, r)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("re-encoding the accepted run does not reproduce the input")
		}
	})
}
