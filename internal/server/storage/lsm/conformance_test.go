package lsm_test

import (
	"testing"

	"github.com/pglp/panda/internal/server/storage"
	"github.com/pglp/panda/internal/server/storage/lsm"
	"github.com/pglp/panda/internal/server/storage/storagetest"
)

// The lsm store passes the shared Store conformance battery
// (storagetest) — the whole point of the seam. The flush and merge
// thresholds are lowered far below the battery's write volume so
// memtable flushes and run merges race the battery's readers and
// writers for real, not just in dedicated tests.
func TestLSMConformance(t *testing.T) {
	storagetest.TestStore(t, func(t *testing.T) storage.Store {
		s, err := lsm.Open(t.TempDir(), lsm.Options{
			Shards:          4,
			MemtableRecords: 64,
			MaxRuns:         2,
		})
		if err != nil {
			t.Fatalf("lsm.Open: %v", err)
		}
		t.Cleanup(func() {
			if err := s.Close(); err != nil {
				t.Errorf("lsm.Close: %v", err)
			}
		})
		return s
	})
}
