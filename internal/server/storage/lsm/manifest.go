package lsm

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"github.com/pglp/panda/internal/server/storage"
)

// The MANIFEST is the authority on which files hold committed data. It
// is a short text file rewritten atomically (tmp + fsync + rename +
// directory fsync) at every flush and merge commit:
//
//	panda-lsm-manifest v1
//	flushed <seq>
//	run <seq> <records>
//	...
//	ok <crc32c>
//
// Reading it back, three rules make recovery unambiguous:
//
//   - Logs with seq <= flushed are fully absorbed into the listed runs
//     and must be deleted WITHOUT replay: replaying a stale log would
//     resurrect values a later run has already superseded.
//   - Run files not listed are uncommitted leftovers of a crashed
//     flush or merge and are deleted; listed runs must exist and hold
//     exactly the pinned record count, else the directory is corrupt.
//   - The trailing "ok" line carries a CRC32-C of everything above it.
//     The manifest itself is never torn (the atomic write sees to
//     that), but a truncated or hand-edited manifest would silently
//     disown committed runs — the checksum turns that into a loud
//     refusal instead.
//
// Unlike the WAL's MANIFEST, nothing here pins a shard count: the lsm
// layout (one log, global runs) is shard-agnostic, so a directory can
// be reopened with any memory fan-out.
const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
)

// castagnoli is the CRC-32C table the manifest checksum uses — the
// same polynomial the record codec uses for frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// runInfo identifies one committed sorted run: its file sequence and
// the record count pinned at commit time.
type runInfo struct {
	seq     uint64
	records int
}

// manifest is the parsed MANIFEST state: the highest absorbed log
// sequence and the committed runs, oldest first.
type manifest struct {
	flushed uint64
	runs    []runInfo
}

// hasRun reports whether seq is a committed run.
func (m manifest) hasRun(seq uint64) bool {
	for _, ri := range m.runs {
		if ri.seq == seq {
			return true
		}
	}
	return false
}

// readManifest reads dir's MANIFEST. ok is false (with a nil error)
// when the directory has no MANIFEST — a fresh directory. A malformed,
// truncated, checksum-failing or future-versioned MANIFEST is an
// error, as is a MANIFEST that belongs to the WAL backend.
func readManifest(dir string) (m manifest, ok bool, err error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("lsm: reading manifest: %w", err)
	}
	malformed := func() (manifest, bool, error) {
		return manifest{}, false, fmt.Errorf("%w: malformed MANIFEST in %s (restore it from backup; see PERSISTENCE.md)", ErrCorrupt, dir)
	}
	content := string(b)
	if !strings.HasSuffix(content, "\n") {
		return malformed()
	}
	lines := strings.Split(strings.TrimSuffix(content, "\n"), "\n")
	if len(lines) < 3 {
		if len(lines) > 0 && strings.HasPrefix(lines[0], "panda-wal-manifest") {
			return manifest{}, false, fmt.Errorf("lsm: %s is a WAL data dir (its MANIFEST says %q); open it with the wal backend (-backend=wal)", dir, lines[0])
		}
		return malformed()
	}
	if strings.HasPrefix(lines[0], "panda-wal-manifest") {
		return manifest{}, false, fmt.Errorf("lsm: %s is a WAL data dir (its MANIFEST says %q); open it with the wal backend (-backend=wal)", dir, lines[0])
	}
	var ver int
	if _, err := fmt.Sscanf(lines[0], "panda-lsm-manifest v%d", &ver); err != nil {
		return malformed()
	}
	if ver != manifestVersion {
		return manifest{}, false, fmt.Errorf("lsm: manifest version v%d in %s not supported (this build reads v%d)", ver, dir, manifestVersion)
	}

	// The checksum covers every byte up to the "ok" line.
	okLine := lines[len(lines)-1]
	body := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	var sum uint32
	if n, err := fmt.Sscanf(okLine, "ok %08x", &sum); n != 1 || err != nil || okLine != fmt.Sprintf("ok %08x", sum) {
		return malformed()
	}
	if sum != crc32.Checksum([]byte(body), castagnoli) {
		return malformed()
	}

	if _, err := fmt.Sscanf(lines[1], "flushed %d", &m.flushed); err != nil {
		return malformed()
	}
	for _, line := range lines[2 : len(lines)-1] {
		var ri runInfo
		if _, err := fmt.Sscanf(line, "run %d %d", &ri.seq, &ri.records); err != nil || ri.records < 0 {
			return malformed()
		}
		if n := len(m.runs); n > 0 && ri.seq <= m.runs[n-1].seq {
			return malformed()
		}
		m.runs = append(m.runs, ri)
	}
	return m, true, nil
}

// writeManifest atomically replaces dir's MANIFEST. The rename is the
// commit point of every flush and merge: until it lands, the previous
// manifest (and the files it lists) stay authoritative.
func writeManifest(dir string, m manifest) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "panda-lsm-manifest v%d\n", manifestVersion)
	fmt.Fprintf(&sb, "flushed %d\n", m.flushed)
	for _, ri := range m.runs {
		fmt.Fprintf(&sb, "run %d %d\n", ri.seq, ri.records)
	}
	fmt.Fprintf(&sb, "ok %08x\n", crc32.Checksum([]byte(sb.String()), castagnoli))
	if err := storage.WriteFileAtomic(dir, manifestName, []byte(sb.String())); err != nil {
		return fmt.Errorf("lsm: writing manifest: %w", err)
	}
	return nil
}
