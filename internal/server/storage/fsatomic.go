package storage

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes name into dir via tmp + fsync + rename +
// directory fsync, so the file is either absent or complete — never
// torn — regardless of where a crash lands. Both durable backends
// (wal, lsm) commit their manifests through it.
func WriteFileAtomic(dir, name string, body []byte) error {
	tmpPath := filepath.Join(dir, name+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		_ = os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, name)); err != nil {
		_ = os.Remove(tmpPath)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and removals inside it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
