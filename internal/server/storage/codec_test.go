package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"github.com/pglp/panda/internal/geo"
)

// le64 appends v as a little-endian 64-bit word.
func le64(buf []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(buf, w[:]...)
}

// goldenFrame builds the expected frame bytes from first principles —
// independently of AppendFrame — so the test pins the format, not the
// implementation.
func goldenFrame(user, t int64, x, y float64, cell, pv int64) []byte {
	var payload []byte
	payload = le64(payload, uint64(user))
	payload = le64(payload, uint64(t))
	payload = le64(payload, math.Float64bits(x))
	payload = le64(payload, math.Float64bits(y))
	payload = le64(payload, uint64(cell))
	payload = le64(payload, uint64(pv))
	frame := make([]byte, 0, FrameSize)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], PayloadSize)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	frame = append(frame, hdr[:]...)
	return append(frame, payload...)
}

// TestFrameGoldenLayout pins the 48-byte record layout byte-for-byte.
// If this test ever needs updating, the wire format and the WAL on-disk
// format both changed — that requires a version bump, not a test edit.
func TestFrameGoldenLayout(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
	}{
		{"simple", Record{User: 7, T: 3, Point: geo.Pt(1.5, -2.25), Cell: 42, PolicyVersion: 1}},
		{"zero", Record{}},
		{"negative user and t", Record{User: -12345, T: -9, Point: geo.Pt(0, 0), Cell: -1, PolicyVersion: 2}},
		{"extremes", Record{
			User: math.MaxInt32, T: math.MaxInt32,
			Point: geo.Pt(math.MaxFloat64, math.SmallestNonzeroFloat64),
			Cell:  1<<31 - 1, PolicyVersion: 1 << 30,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := goldenFrame(
				int64(tc.rec.User), int64(tc.rec.T),
				tc.rec.Point.X, tc.rec.Point.Y,
				int64(tc.rec.Cell), int64(tc.rec.PolicyVersion),
			)
			got := AppendFrame(nil, tc.rec)
			if !bytes.Equal(got, want) {
				t.Fatalf("frame bytes diverged from the pinned layout:\n got %x\nwant %x", got, want)
			}
			if len(got) != FrameSize {
				t.Fatalf("frame is %d bytes, want %d", len(got), FrameSize)
			}
			back, ok := DecodeFrame(got)
			if !ok {
				t.Fatalf("DecodeFrame rejected a frame AppendFrame produced")
			}
			if back != tc.rec {
				t.Fatalf("round trip mismatch: got %+v want %+v", back, tc.rec)
			}
		})
	}
}

// TestFrameFixedWords pins a handful of absolute byte offsets with
// hand-computed values, so even a consistent encode/decode rewrite (the
// failure mode a pure round-trip test misses) trips the alarm.
func TestFrameFixedWords(t *testing.T) {
	rec := Record{User: 258, T: -1, Point: geo.Pt(1.0, 2.0), Cell: 5, PolicyVersion: 3}
	frame := AppendFrame(nil, rec)
	// Header: length word then CRC.
	if got := binary.LittleEndian.Uint32(frame[0:]); got != 48 {
		t.Fatalf("length word = %d, want 48", got)
	}
	// User 258 = 0x102 little-endian at offset 8.
	if frame[8] != 0x02 || frame[9] != 0x01 {
		t.Fatalf("user bytes = %x %x, want 02 01", frame[8], frame[9])
	}
	// T = -1: all 64 bits set (two's complement) at offset 16.
	for i := 16; i < 24; i++ {
		if frame[i] != 0xFF {
			t.Fatalf("t=-1 byte %d = %x, want ff", i, frame[i])
		}
	}
	// X = 1.0 → IEEE-754 bits 0x3FF0000000000000 at offset 24.
	if got := binary.LittleEndian.Uint64(frame[24:]); got != 0x3FF0000000000000 {
		t.Fatalf("x bits = %#x, want 0x3FF0000000000000", got)
	}
	// Y = 2.0 → 0x4000000000000000 at offset 32.
	if got := binary.LittleEndian.Uint64(frame[32:]); got != 0x4000000000000000 {
		t.Fatalf("y bits = %#x, want 0x4000000000000000", got)
	}
}

// TestDecodeFrameRejects covers the refusal paths: short frames, bad
// length words, and corrupted payloads.
func TestDecodeFrameRejects(t *testing.T) {
	frame := AppendFrame(nil, Record{User: 1, T: 2, Point: geo.Pt(3, 4), Cell: 5, PolicyVersion: 6})

	if _, ok := DecodeFrame(frame[:FrameSize-1]); ok {
		t.Fatal("short frame accepted")
	}
	if _, ok := DecodeFrame(nil); ok {
		t.Fatal("empty frame accepted")
	}

	bad := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint32(bad[0:], PayloadSize+8)
	if _, ok := DecodeFrame(bad); ok {
		t.Fatal("wrong length word accepted")
	}

	for _, flip := range []int{8, 20, FrameSize - 1} {
		bad = append(bad[:0], frame...)
		bad[flip] ^= 0x40
		if _, ok := DecodeFrame(bad); ok {
			t.Fatalf("payload corruption at byte %d not caught by CRC", flip)
		}
	}
}

// TestRecordPool exercises the scratch-slice pool: slices come back
// empty and a recycled slice's capacity is reused.
func TestRecordPool(t *testing.T) {
	s := GetRecords()
	if len(s) != 0 {
		t.Fatalf("pooled slice not empty: len %d", len(s))
	}
	for i := 0; i < 1000; i++ {
		s = append(s, Record{User: i})
	}
	PutRecords(s)
	s2 := GetRecords()
	if len(s2) != 0 {
		t.Fatalf("recycled slice not reset: len %d", len(s2))
	}
	PutRecords(s2)
	PutRecords(nil) // must not panic
}
