package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"github.com/pglp/panda/internal/geo"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder — the
// byte stream shared by the binary wire format
// (application/x-panda-records) and WAL replay, i.e. attacker-reachable
// input. The decoder must never panic, must accept exactly the frames
// the rejection table allows (length >= FrameSize, length word ==
// PayloadSize, CRC32-C match), and every accepted frame must re-encode
// to the same bytes it was decoded from.
func FuzzDecodeFrame(f *testing.F) {
	// Seed corpus: the golden frames the layout test pins, plus each
	// row of the rejection table.
	golden := func(user, t int64, x, y float64, cell, pv int64) []byte {
		return AppendFrame(nil, Record{
			User: int(user), T: int(t), Point: geo.Pt(x, y),
			Cell: int(cell), PolicyVersion: int(pv),
		})
	}
	f.Add(golden(0, 0, 0, 0, 0, 0))
	f.Add(golden(7, 12, 3.25, -1.5, 42, 3))
	f.Add(golden(-1, -9, math.Inf(1), math.Copysign(0, -1), -5, -1))
	f.Add(golden(1<<40, 1<<33, 1e300, 5e-324, 1<<31, 1<<50))
	f.Add([]byte{})                               // too short
	f.Add(golden(1, 2, 3, 4, 5, 6)[:FrameSize-1]) // truncated by one byte
	corruptLen := golden(1, 2, 3, 4, 5, 6)
	binary.LittleEndian.PutUint32(corruptLen[0:], PayloadSize+1)
	f.Add(corruptLen) // bad length word
	corruptCRC := golden(1, 2, 3, 4, 5, 6)
	corruptCRC[4] ^= 0xff
	f.Add(corruptCRC) // bad checksum
	flippedPayload := golden(1, 2, 3, 4, 5, 6)
	flippedPayload[20] ^= 0x01
	f.Add(flippedPayload) // payload bit flip the CRC must catch
	long := append(golden(1, 2, 3, 4, 5, 6), 0xAA, 0xBB)
	f.Add(long) // trailing bytes are ignored, frame still valid

	f.Fuzz(func(t *testing.T, frame []byte) {
		rec, ok := DecodeFrame(frame)

		// The rejection table, computed independently of the decoder.
		wantOK := len(frame) >= FrameSize &&
			binary.LittleEndian.Uint32(frame[0:]) == PayloadSize &&
			crc32.Checksum(frame[8:FrameSize], crc32.MakeTable(crc32.Castagnoli)) == binary.LittleEndian.Uint32(frame[4:])
		if ok != wantOK {
			t.Fatalf("DecodeFrame ok=%v, rejection table says %v (len=%d)", ok, wantOK, len(frame))
		}
		if !ok {
			return
		}

		// Round trip: an accepted frame re-encodes byte-identically
		// (float payloads carry raw bits, so even NaNs round-trip).
		if got := AppendFrame(nil, rec); !bytes.Equal(got, frame[:FrameSize]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, frame[:FrameSize])
		}

		// DecodePayload on the verified payload must agree with the
		// framed decode (compared via re-encoding: NaN payloads make
		// struct equality lie).
		p := DecodePayload(frame[8:FrameSize])
		if got := AppendFrame(nil, p); !bytes.Equal(got, frame[:FrameSize]) {
			t.Fatalf("DecodePayload disagrees with DecodeFrame: %+v vs %+v", p, rec)
		}
	})
}
