package storage

import (
	"sync"
	"sync/atomic"
	"testing"
)

// These tests pin the write-generation contract the analytics engine's
// cache pinning depends on (see the coherence note in analytics): for
// the sharded store, Gen(t) and Epoch are *sums* of per-shard counters
// read under different locks at different instants, so the properties
// below are not automatic — they hold because each addend is bumped in
// the same critical section as its data write and only ever grows.
//
// Contract:
//  1. observed sums are monotonic for any single reader;
//  2. a completed insert to timestep t is reflected in every Gen(t)
//     (and Epoch) read that starts after the insert returned — a write
//     always changes the generation readers observe, so a cache entry
//     pinned to the old value can never be served stale.

// TestShardedGenMonotonicUnderConcurrentWrites hammers one timestep
// from many users (hence many shards) while readers assert that Gen(t)
// and Epoch never move backwards. Run with -race in CI.
func TestShardedGenMonotonicUnderConcurrentWrites(t *testing.T) {
	const (
		shards  = 8
		writers = 8
		inserts = 2000
		ts      = 3
	)
	s := NewShardedStore(shards)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen, lastEpoch uint64
			for !stop.Load() {
				if g := s.Gen(ts); g < lastGen {
					t.Errorf("Gen(%d) went backwards: %d after %d", ts, g, lastGen)
					return
				} else {
					lastGen = g
				}
				if e := s.Epoch(); e < lastEpoch {
					t.Errorf("Epoch went backwards: %d after %d", e, lastEpoch)
					return
				} else {
					lastEpoch = e
				}
			}
		}()
	}

	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < inserts; i++ {
				// Same timestep, different users: writes land on every
				// shard, and replacements (i repeats cells) bump too.
				s.Insert(Record{User: w*31 + i%17, T: ts, Cell: i % 5})
			}
		}(w)
	}
	wwg.Wait()
	stop.Store(true)
	wg.Wait()

	if g := s.Gen(ts); g != writers*inserts {
		t.Fatalf("Gen(%d) = %d after %d writes (every insert and replacement must bump)", ts, g, writers*inserts)
	}
}

// TestShardedGenWriteAlwaysObserved: with concurrent writers to the
// same timestep across shards, every completed insert strictly raises
// the Gen(t) and Epoch a reader observes afterwards — the cache-
// invalidation guarantee itself.
func TestShardedGenWriteAlwaysObserved(t *testing.T) {
	const ts = 7
	for _, shards := range []int{1, 8} {
		s := NewShardedStore(shards)
		var stop atomic.Bool
		var bg sync.WaitGroup
		for w := 0; w < 4; w++ {
			bg.Add(1)
			go func(w int) {
				defer bg.Done()
				for i := 0; !stop.Load(); i++ {
					s.Insert(Record{User: 1000 + w*97 + i%13, T: ts, Cell: i % 3})
				}
			}(w)
		}

		for i := 0; i < 500; i++ {
			user := i % 50 // our own users; background writers use others
			gBefore, eBefore := s.Gen(ts), s.Epoch()
			s.Insert(Record{User: user, T: ts, Cell: i % 4})
			if g := s.Gen(ts); g <= gBefore {
				t.Fatalf("shards=%d: Gen(%d) = %d not above %d after a completed insert", shards, ts, g, gBefore)
			}
			if e := s.Epoch(); e <= eBefore {
				t.Fatalf("shards=%d: Epoch = %d not above %d after a completed insert", shards, e, eBefore)
			}
		}
		stop.Store(true)
		bg.Wait()
	}
}

// TestShardedGenPinsCachedAggregate replays the engine's exact read
// protocol (record Gen, then scan) against a racing write and asserts
// the stale-cache detector fires: if a later scan would see different
// records, a later Gen(t) read cannot still equal the pinned value.
func TestShardedGenPinsCachedAggregate(t *testing.T) {
	s := NewShardedStore(4)
	const ts = 1
	for u := 0; u < 16; u++ {
		s.Insert(Record{User: u, T: ts, Cell: u % 4})
	}
	pinned := s.Gen(ts)
	count := 0
	s.ScanRange(ts, ts, func(Record) bool { count++; return true })

	// A write lands after the aggregate was computed and cached.
	s.Insert(Record{User: 99, T: ts, Cell: 0})

	if g := s.Gen(ts); g == pinned {
		t.Fatalf("Gen(%d) still %d after a write — cached aggregate (count=%d) would be served stale", ts, g, count)
	}
}
