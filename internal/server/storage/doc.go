// Package storage is the record layer of PANDA's server side: the
// Store contract for released-location records and its two in-process
// implementations (a single-lock map and a sharded variant). It sits
// below the analytics engine and the DB facade — it knows nothing about
// grids, policies, or HTTP — so persistence backends and query engines
// can both plug in against the same narrow surface.
package storage
