// Package storage is the record layer of PANDA's server side: the
// Store contract for released-location records and its two in-process
// implementations (a single-lock map and the sharded Sharded). It sits
// below the analytics engine and the DB facade — it knows nothing about
// grids, policies, or HTTP — so persistence backends and query engines
// can both plug in against the same narrow surface.
//
// ShardFor is the package's one routing function: every layer that
// partitions records by user (Sharded's lock shards, the WAL's log
// stripes) routes through it, and Sharded exposes its partition
// (NumShards, ShardLen, ScanShard, InsertGrouped) so a cooperating
// durability layer can keep one log per shard without re-deriving — or
// disagreeing about — placement.
package storage
