package storage

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"sync"

	"github.com/pglp/panda/internal/geo"
)

// The fixed binary record codec. One Record encodes to a 48-byte
// little-endian payload (user, t, the released point's two float64
// coordinates, cell, policy version — all as 64-bit words) framed by an
// 8-byte header (payload length + CRC32-C). The WAL has always framed
// its logs this way; lifting the codec here lets the HTTP wire format
// (application/x-panda-records), the ingest queue, and the WAL stripes
// all speak the same frames, so a binary batch flows from socket to
// stripe without re-encoding.
const (
	// PayloadSize is the fixed encoded size of one Record: six 64-bit
	// little-endian words (user, t, X bits, Y bits, cell, policy
	// version).
	PayloadSize = 48
	// FrameSize is PayloadSize plus the 8-byte frame header (length
	// word + CRC32-C of the payload).
	FrameSize = 8 + PayloadSize
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum most log-structured stores frame with.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends the framed encoding of rec to buf and returns the
// extended buffer: an 8-byte header (length word PayloadSize, CRC32-C of
// the payload) followed by the 48-byte payload.
func AppendFrame(buf []byte, rec Record) []byte {
	var payload [PayloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:], uint64(int64(rec.User)))
	binary.LittleEndian.PutUint64(payload[8:], uint64(int64(rec.T)))
	binary.LittleEndian.PutUint64(payload[16:], math.Float64bits(rec.Point.X))
	binary.LittleEndian.PutUint64(payload[24:], math.Float64bits(rec.Point.Y))
	binary.LittleEndian.PutUint64(payload[32:], uint64(int64(rec.Cell)))
	binary.LittleEndian.PutUint64(payload[40:], uint64(int64(rec.PolicyVersion)))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], PayloadSize)
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload[:], castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload[:]...)
}

// DecodePayload decodes a 48-byte payload (no frame header) back into a
// Record — the inverse of AppendFrame's payload encoding. The caller
// must have verified the frame (see DecodeFrame) or trust the source.
func DecodePayload(p []byte) Record {
	return Record{
		User: int(int64(binary.LittleEndian.Uint64(p[0:]))),
		T:    int(int64(binary.LittleEndian.Uint64(p[8:]))),
		Point: geo.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
			math.Float64frombits(binary.LittleEndian.Uint64(p[24:])),
		),
		Cell:          int(int64(binary.LittleEndian.Uint64(p[32:]))),
		PolicyVersion: int(int64(binary.LittleEndian.Uint64(p[40:]))),
	}
}

// DecodeFrame verifies and decodes one full frame (header + payload).
// It reports ok=false when the frame is shorter than FrameSize, the
// length word is not PayloadSize, or the CRC does not match — the torn/
// corrupt signal shared by WAL replay and the binary wire format.
func DecodeFrame(frame []byte) (rec Record, ok bool) {
	if len(frame) < FrameSize {
		return Record{}, false
	}
	if binary.LittleEndian.Uint32(frame[0:]) != PayloadSize {
		return Record{}, false
	}
	if crc32.Checksum(frame[8:FrameSize], castagnoli) != binary.LittleEndian.Uint32(frame[4:]) {
		return Record{}, false
	}
	return DecodePayload(frame[8:FrameSize]), true
}

// recordSlices recycles record batches across the ingest hot path: HTTP
// handlers decode into a pooled slice, the queue hands it through the
// drain workers, and the worker returns it after the sink applied the
// batch. Pooled via pointer so Put does not allocate a header.
var recordSlices = sync.Pool{
	New: func() any {
		s := make([]Record, 0, 256)
		return &s
	},
}

// GetRecords returns an empty record slice from the pool; capacity grows
// toward the largest batches the process has seen. Pass it back with
// PutRecords when the batch is no longer referenced.
func GetRecords() []Record {
	return (*recordSlices.Get().(*[]Record))[:0]
}

// maxPooledRecords caps the capacity PutRecords hands back to the pool.
// One maximum-size binary batch is 100k records — about 5.6 MB of
// backing array — and a single such outlier would otherwise stay pinned
// in the pool for the life of the process, multiplied by however many
// lanes saw one. Above the cap the slice goes to the GC instead;
// steady-state batches keep recycling.
const maxPooledRecords = 1 << 14

// PutRecords recycles a slice obtained from GetRecords (or any record
// slice the caller owns outright). The caller must not use s afterward;
// sinks and stores honor this by never retaining batch slices.
// Oversized outliers (see maxPooledRecords) are dropped, not pooled.
func PutRecords(s []Record) {
	if s == nil || cap(s) > maxPooledRecords {
		return
	}
	s = s[:0]
	recordSlices.Put(&s)
}
