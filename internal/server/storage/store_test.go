package storage

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
)

// TestTimestepIndexMatchesHistory cross-checks the timestep index (At,
// ScanRange) against the per-user history slices on a random insert
// stream with replacements, for both implementations.
func TestTimestepIndexMatchesHistory(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Store
	}{
		{"mem", NewMemStore()},
		{"sharded", NewShardedStore(5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(7, 11))
			want := make(map[int]map[int]Record) // t -> user -> record
			for i := 0; i < 3000; i++ {
				rec := Record{
					User: int(rng.Int64N(50)), T: int(rng.Int64N(40)),
					Cell: int(rng.Int64N(64)), PolicyVersion: 1,
				}
				tc.s.Insert(rec)
				if want[rec.T] == nil {
					want[rec.T] = make(map[int]Record)
				}
				want[rec.T][rec.User] = rec
			}
			for ti := 0; ti < 40; ti++ {
				got := tc.s.At(ti)
				if len(got) != len(want[ti]) {
					t.Fatalf("At(%d): %d records, want %d", ti, len(got), len(want[ti]))
				}
				for i, rec := range got {
					if i > 0 && got[i-1].User >= rec.User {
						t.Fatalf("At(%d) not ordered by user: %v", ti, got)
					}
					if want[ti][rec.User] != rec {
						t.Fatalf("At(%d) user %d = %+v, want %+v", ti, rec.User, rec, want[ti][rec.User])
					}
				}
			}
		})
	}
}

func TestScanRange(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Store
	}{
		{"mem", NewMemStore()},
		{"sharded", NewShardedStore(3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for u := 0; u < 6; u++ {
				for ti := 0; ti < 20; ti++ {
					tc.s.Insert(Record{User: u, T: ti, Cell: (u + ti) % 9})
				}
			}
			var got []Record
			tc.s.ScanRange(5, 7, func(rec Record) bool {
				got = append(got, rec)
				return true
			})
			if len(got) != 3*6 {
				t.Fatalf("ScanRange(5,7) yielded %d records, want 18", len(got))
			}
			for i := 1; i < len(got); i++ {
				if got[i].T < got[i-1].T {
					t.Fatalf("ScanRange not ascending in T: %d after %d", got[i].T, got[i-1].T)
				}
			}
			// Clamping: a huge t1 must not cost more than the stored range,
			// and negative t0 is treated as 0.
			n := 0
			tc.s.ScanRange(-5, 1<<40, func(Record) bool { n++; return true })
			if n != tc.s.Len() {
				t.Errorf("clamped full range visited %d records, want %d", n, tc.s.Len())
			}
			// Early stop.
			n = 0
			tc.s.ScanRange(0, 19, func(Record) bool { n++; return n < 4 })
			if n != 4 {
				t.Errorf("early-stopped scan visited %d records, want 4", n)
			}
			// Empty range beyond MaxT.
			tc.s.ScanRange(100, 200, func(Record) bool {
				t.Error("scan beyond MaxT yielded a record")
				return false
			})
		})
	}
}

func TestGenerations(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Store
	}{
		{"mem", NewMemStore()},
		{"sharded", NewShardedStore(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s
			if s.Gen(0) != 0 || s.Epoch() != 0 {
				t.Fatalf("fresh store: Gen(0)=%d Epoch=%d, want 0/0", s.Gen(0), s.Epoch())
			}
			s.Insert(Record{User: 1, T: 0, Cell: 1})
			s.Insert(Record{User: 2, T: 3, Cell: 2})
			g0, g3 := s.Gen(0), s.Gen(3)
			if g0 == 0 || g3 == 0 {
				t.Fatalf("written timesteps have zero generation: g0=%d g3=%d", g0, g3)
			}
			if s.Gen(1) != 0 {
				t.Errorf("untouched timestep 1 has generation %d", s.Gen(1))
			}
			// A replacement (same user, same t) must bump the generation:
			// the timestep's aggregate changed.
			s.Insert(Record{User: 1, T: 0, Cell: 7})
			if s.Gen(0) <= g0 {
				t.Errorf("replacement did not bump Gen(0): %d -> %d", g0, s.Gen(0))
			}
			// Writes to t=0 must not disturb t=3's generation.
			if s.Gen(3) != g3 {
				t.Errorf("write to t=0 changed Gen(3): %d -> %d", g3, s.Gen(3))
			}
			if s.Epoch() != 3 {
				t.Errorf("Epoch = %d after 3 writes, want 3", s.Epoch())
			}
			// Batches bump per-timestep generations individually.
			e := s.Epoch()
			s.InsertBatch([]Record{{User: 5, T: 3, Cell: 0}, {User: 6, T: 4, Cell: 0}})
			if s.Gen(3) != g3+1 || s.Gen(4) != 1 {
				t.Errorf("after batch: Gen(3)=%d want %d, Gen(4)=%d want 1", s.Gen(3), g3+1, s.Gen(4))
			}
			if s.Epoch() != e+2 {
				t.Errorf("after batch: Epoch=%d want %d", s.Epoch(), e+2)
			}
		})
	}
}

// TestShardedRangeMatchesMem feeds both implementations the same stream
// and checks the new read paths agree record-for-record.
func TestShardedRangeMatchesMem(t *testing.T) {
	mem := NewMemStore()
	sharded := NewShardedStore(7)
	rng := rand.New(rand.NewPCG(3, 9))
	for i := 0; i < 2000; i++ {
		rec := Record{
			User: int(rng.Int64N(40)), T: int(rng.Int64N(30)),
			Cell: int(rng.Int64N(64)), PolicyVersion: 1,
		}
		mem.Insert(rec)
		sharded.Insert(rec)
	}
	collect := func(s Store, t0, t1 int) []Record {
		var out []Record
		s.ScanRange(t0, t1, func(rec Record) bool { out = append(out, rec); return true })
		sort.Slice(out, func(i, j int) bool {
			if out[i].T != out[j].T {
				return out[i].T < out[j].T
			}
			return out[i].User < out[j].User
		})
		return out
	}
	for _, r := range [][2]int{{0, 29}, {5, 5}, {10, 20}, {25, 99}} {
		a, b := collect(mem, r[0], r[1]), collect(sharded, r[0], r[1])
		if !reflect.DeepEqual(a, b) {
			t.Errorf("ScanRange(%d,%d): mem %d records, sharded %d", r[0], r[1], len(a), len(b))
		}
	}
	if mem.Epoch() != sharded.Epoch() {
		t.Errorf("Epoch: mem=%d sharded=%d", mem.Epoch(), sharded.Epoch())
	}
	for ti := 0; ti < 30; ti++ {
		if mem.Gen(ti) != sharded.Gen(ti) {
			t.Errorf("Gen(%d): mem=%d sharded=%d", ti, mem.Gen(ti), sharded.Gen(ti))
		}
	}
}
