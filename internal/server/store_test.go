package server

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"github.com/pglp/panda/internal/geo"
)

// TestShardedStoreMatchesMemStore feeds both implementations the same
// insert stream (including replacements) and checks every read path
// agrees.
func TestShardedStoreMatchesMemStore(t *testing.T) {
	mem := NewMemStore()
	sharded := NewShardedStore(7)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 2000; i++ {
		rec := Record{
			User: int(rng.Int64N(40)), T: int(rng.Int64N(50)),
			Cell: int(rng.Int64N(64)), PolicyVersion: 1 + int(rng.Int64N(3)),
		}
		ma := mem.Insert(rec)
		sa := sharded.Insert(rec)
		if ma != sa {
			t.Fatalf("insert %d: added mem=%v sharded=%v", i, ma, sa)
		}
	}
	if mem.Len() != sharded.Len() {
		t.Errorf("Len: mem=%d sharded=%d", mem.Len(), sharded.Len())
	}
	if mem.MaxT() != sharded.MaxT() {
		t.Errorf("MaxT: mem=%d sharded=%d", mem.MaxT(), sharded.MaxT())
	}
	if !reflect.DeepEqual(mem.Users(), sharded.Users()) {
		t.Errorf("Users differ: %v vs %v", mem.Users(), sharded.Users())
	}
	for _, u := range mem.Users() {
		if !reflect.DeepEqual(mem.UserRecords(u), sharded.UserRecords(u)) {
			t.Errorf("UserRecords(%d) differ", u)
		}
		if !reflect.DeepEqual(mem.UserRecordsAfter(u, 10, 5), sharded.UserRecordsAfter(u, 10, 5)) {
			t.Errorf("UserRecordsAfter(%d) differ", u)
		}
	}
	for ti := 0; ti < 50; ti++ {
		if !reflect.DeepEqual(mem.At(ti), sharded.At(ti)) {
			t.Errorf("At(%d) differs", ti)
		}
	}
	countScan := func(s Store) int {
		n := 0
		s.Scan(func(Record) bool { n++; return true })
		return n
	}
	if countScan(mem) != countScan(sharded) {
		t.Errorf("Scan counts differ: %d vs %d", countScan(mem), countScan(sharded))
	}
}

func TestUserRecordsAfter(t *testing.T) {
	s := NewMemStore()
	for _, ti := range []int{0, 2, 4, 6, 8} {
		s.Insert(Record{User: 1, T: ti, Cell: 0})
	}
	if got := s.UserRecordsAfter(1, -1, 0); len(got) != 5 {
		t.Errorf("no limit from start: %d records, want 5", len(got))
	}
	got := s.UserRecordsAfter(1, 2, 2)
	if len(got) != 2 || got[0].T != 4 || got[1].T != 6 {
		t.Errorf("after 2 limit 2 = %+v, want T=4,6", got)
	}
	if got := s.UserRecordsAfter(1, 8, 10); len(got) != 0 {
		t.Errorf("past the end = %+v, want empty", got)
	}
	if got := s.UserRecordsAfter(99, -1, 10); len(got) != 0 {
		t.Errorf("unknown user = %+v, want empty", got)
	}
}

// TestShardedStoreConcurrent hammers a sharded store from many
// goroutines mixing single inserts, batch inserts, and every read path —
// the go test -race target for the new locking scheme.
func TestShardedStoreConcurrent(t *testing.T) {
	s := NewShardedStore(8)
	const (
		writers = 8
		readers = 4
		steps   = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			var batch []Record
			for ti := 0; ti < steps; ti++ {
				rec := Record{User: user, T: ti, Cell: (user + ti) % 64}
				if ti%2 == 0 {
					s.Insert(rec)
				} else {
					batch = append(batch, rec)
				}
			}
			s.InsertBatch(batch)
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				s.At(i % 10)
				s.UserRecords(i % writers)
				s.UserRecordsAfter(i%writers, i%steps, 16)
				s.Users()
				s.Len()
				s.MaxT()
				s.Scan(func(Record) bool { return i%50 != 0 })
			}
		}(r)
	}
	wg.Wait()
	if s.Len() != writers*steps {
		t.Errorf("Len = %d, want %d", s.Len(), writers*steps)
	}
	if s.MaxT() != steps-1 {
		t.Errorf("MaxT = %d, want %d", s.MaxT(), steps-1)
	}
}

// TestDBInsertBatchAtomicValidation: a batch containing an invalid
// record stores nothing.
func TestDBInsertBatchAtomicValidation(t *testing.T) {
	grid := geo.MustGrid(2, 2, 1)
	db := NewDB(grid)
	_, _, err := db.InsertBatch([]Record{
		{User: 1, T: 0, Cell: 0},
		{User: 1, T: -1, Cell: 0}, // invalid
	})
	if err == nil {
		t.Fatal("invalid batch should error")
	}
	if db.Len() != 0 {
		t.Errorf("Len = %d after failed batch, want 0", db.Len())
	}
	added, replaced, err := db.InsertBatch([]Record{
		{User: 1, T: 0, Cell: 0},
		{User: 1, T: 0, Cell: 1}, // replaces within the same batch
		{User: 2, T: 3, Cell: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || replaced != 1 {
		t.Errorf("added=%d replaced=%d, want 2/1", added, replaced)
	}
	if rs := db.UserRecords(1); len(rs) != 1 || rs[0].Cell != 1 {
		t.Errorf("user 1 records = %+v, want single record at cell 1", rs)
	}
}

// TestNewDBOn wires a custom store through the DB seam.
func TestNewDBOn(t *testing.T) {
	grid := geo.MustGrid(2, 2, 1)
	if _, err := NewDBOn(nil, NewMemStore()); err == nil {
		t.Error("nil grid should error")
	}
	if _, err := NewDBOn(grid, nil); err == nil {
		t.Error("nil store should error")
	}
	db, err := NewDBOn(grid, NewShardedStore(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(Record{User: 0, T: 0, Cell: 1}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}
