package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
	"github.com/pglp/panda/internal/server/wire"
)

// benchReleases is the contact-tracing re-send scenario size: one user's
// whole history of 10k releases.
const benchReleases = 10_000

func newBenchServer(b *testing.B, shards int) (*Client, *geo.Grid, func()) {
	b.Helper()
	grid := geo.MustGrid(32, 32, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(NewShardedDB(grid, shards), mgr)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return NewClient(ts.URL, ts.Client()), grid, ts.Close
}

// BenchmarkV1SequentialReports ingests 10k releases as 10k individual
// POST /v1/report round trips — the legacy re-send path.
func BenchmarkV1SequentialReports(b *testing.B) {
	client, grid, done := newBenchServer(b, 1)
	defer done()
	body := make([]string, benchReleases)
	for i := range body {
		p := grid.Center(i % grid.NumCells())
		body[i] = fmt.Sprintf(`{"user":1,"t":%d,"x":%v,"y":%v}`, i, p.X, p.Y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchReleases; j++ {
			resp, err := client.hc.Post(client.base+"/v1/report", "application/json",
				strings.NewReader(body[j]))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 204 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
	b.ReportMetric(float64(benchReleases*b.N)/b.Elapsed().Seconds(), "releases/sec")
}

// BenchmarkV2BatchReports ingests the same 10k releases as one
// POST /v2/reports batch — the whole-history re-send in one round trip.
func BenchmarkV2BatchReports(b *testing.B) {
	client, grid, done := newBenchServer(b, 1)
	defer done()
	releases := make([]wire.Release, benchReleases)
	for i := range releases {
		p := grid.Center(i % grid.NumCells())
		releases[i] = wire.Release{T: i, X: p.X, Y: p.Y}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ReportBatch(1, releases); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchReleases*b.N)/b.Elapsed().Seconds(), "releases/sec")
}

// BenchmarkMemStoreInsertParallel and the sharded variant measure raw
// concurrent ingestion with GOMAXPROCS writers, each writing its own
// user stream — the contention the sharded store removes.
func BenchmarkMemStoreInsertParallel(b *testing.B)     { benchStoreParallel(b, NewMemStore()) }
func BenchmarkShardedStoreInsertParallel(b *testing.B) { benchStoreParallel(b, NewShardedStore(32)) }

// --- read-path benchmarks: the seed's full-scan analytics vs the
// timestep index and the engine's epoch-versioned cache ---

const (
	benchUsers = 2000
	benchSteps = 50
)

// newAnalyticsBenchDB fills a DB with benchUsers users × benchSteps
// timesteps (one record each), the monitoring workload's shape.
func newAnalyticsBenchDB(b *testing.B) *DB {
	b.Helper()
	grid := geo.MustGrid(32, 32, 1)
	db := NewShardedDB(grid, 16)
	batch := make([]Record, 0, benchSteps)
	for u := 0; u < benchUsers; u++ {
		batch = batch[:0]
		for t := 0; t < benchSteps; t++ {
			batch = append(batch, Record{User: u, T: t, Cell: (u*31 + t) % grid.NumCells()})
		}
		if _, _, err := db.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

// seedDensityAt recomputes density the way the seed code path did
// before the timestep index and the analytics engine existed: a scan of
// every stored record, filtering by t.
func seedDensityAt(db *DB, t, blockRows, blockCols int) []int {
	counts := make([]int, db.Grid().NumRegions(blockRows, blockCols))
	db.Store().Scan(func(rec Record) bool {
		if rec.T == t {
			counts[db.Grid().RegionOf(rec.Cell, blockRows, blockCols)]++
		}
		return true
	})
	return counts
}

// BenchmarkDensityAtSeedUncached is the "before": every repeated query
// rescans all users' histories.
func BenchmarkDensityAtSeedUncached(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedDensityAt(db, i%benchSteps, 4, 4)
	}
}

// BenchmarkDensityAtCached is the "after": repeated queries are served
// from the engine's per-timestep cache.
func BenchmarkDensityAtCached(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	db.DensityAt(0, 4, 4) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.DensityAt(i%benchSteps, 4, 4)
	}
}

// BenchmarkDensitySeriesSeedUncached / Cached: the dashboard window
// query (every timestep, every repeat) before and after the engine.
func BenchmarkDensitySeriesSeedUncached(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < benchSteps; t++ {
			seedDensityAt(db, t, 4, 4)
		}
	}
}

func BenchmarkDensitySeriesCached(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.DensitySeries(0, benchSteps-1, 4, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAtSeedScan vs BenchmarkStoreAtIndexed: collecting one
// timestep's records by scanning everything (the seed's At) vs the
// posting-list index.
func BenchmarkStoreAtSeedScan(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := i % benchSteps
		var out []Record
		db.Store().Scan(func(rec Record) bool {
			if rec.T == t {
				out = append(out, rec)
			}
			return true
		})
	}
}

func BenchmarkStoreAtIndexed(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.At(i % benchSteps)
	}
}

// BenchmarkCodeCensusCached measures the cached population census (the
// first iteration computes, the rest hit the epoch-versioned entry).
func BenchmarkCodeCensusCached(b *testing.B) {
	db := newAnalyticsBenchDB(b)
	infected := []int{1, 2, 3, 4, 5}
	db.CodeCensus(infected, 10, benchSteps-1) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.CodeCensus(infected, 10, benchSteps-1)
	}
}

func benchStoreParallel(b *testing.B, s Store) {
	var nextUser atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		user := int(nextUser.Add(1))
		t := 0
		for pb.Next() {
			s.Insert(Record{User: user, T: t, Cell: t % 1024})
			t++
		}
	})
}
