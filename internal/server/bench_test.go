package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
	"github.com/pglp/panda/internal/server/wire"
)

// benchReleases is the contact-tracing re-send scenario size: one user's
// whole history of 10k releases.
const benchReleases = 10_000

func newBenchServer(b *testing.B, shards int) (*Client, *geo.Grid, func()) {
	b.Helper()
	grid := geo.MustGrid(32, 32, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(NewShardedDB(grid, shards), mgr)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return NewClient(ts.URL, ts.Client()), grid, ts.Close
}

// BenchmarkV1SequentialReports ingests 10k releases as 10k individual
// POST /v1/report round trips — the legacy re-send path.
func BenchmarkV1SequentialReports(b *testing.B) {
	client, grid, done := newBenchServer(b, 1)
	defer done()
	body := make([]string, benchReleases)
	for i := range body {
		p := grid.Center(i % grid.NumCells())
		body[i] = fmt.Sprintf(`{"user":1,"t":%d,"x":%v,"y":%v}`, i, p.X, p.Y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchReleases; j++ {
			resp, err := client.hc.Post(client.base+"/v1/report", "application/json",
				strings.NewReader(body[j]))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 204 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
	b.ReportMetric(float64(benchReleases*b.N)/b.Elapsed().Seconds(), "releases/sec")
}

// BenchmarkV2BatchReports ingests the same 10k releases as one
// POST /v2/reports batch — the whole-history re-send in one round trip.
func BenchmarkV2BatchReports(b *testing.B) {
	client, grid, done := newBenchServer(b, 1)
	defer done()
	releases := make([]wire.Release, benchReleases)
	for i := range releases {
		p := grid.Center(i % grid.NumCells())
		releases[i] = wire.Release{T: i, X: p.X, Y: p.Y}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ReportBatch(1, releases); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchReleases*b.N)/b.Elapsed().Seconds(), "releases/sec")
}

// BenchmarkMemStoreInsertParallel and the sharded variant measure raw
// concurrent ingestion with GOMAXPROCS writers, each writing its own
// user stream — the contention the sharded store removes.
func BenchmarkMemStoreInsertParallel(b *testing.B)     { benchStoreParallel(b, NewMemStore()) }
func BenchmarkShardedStoreInsertParallel(b *testing.B) { benchStoreParallel(b, NewShardedStore(32)) }

func benchStoreParallel(b *testing.B, s Store) {
	var nextUser atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		user := int(nextUser.Add(1))
		t := 0
		for pb.Next() {
			s.Insert(Record{User: user, T: t, Cell: t % 1024})
			t++
		}
	})
}
