package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
	"github.com/pglp/panda/internal/server/ingest"
	"github.com/pglp/panda/internal/server/wire"
)

// newAsyncTestServer spins up a backend with async ingest enabled under
// the given queue depth (0 = default).
func newAsyncTestServer(t *testing.T, queueDepth int) (*Server, *Client, *geo.Grid, func()) {
	t.Helper()
	grid := geo.MustGrid(4, 4, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerOpts(NewShardedDB(grid, 4), mgr, Options{
		AsyncIngest: true, IngestWorkers: 2, IngestQueueDepth: queueDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	return srv, client, grid, func() {
		ts.Close()
		srv.DrainIngest(context.Background())
	}
}

// waitDrained polls the queue until every enqueued record is applied.
func waitDrained(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Ingest().Stats().Depth > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never drained: %+v", srv.Ingest().Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsync202AndVisibilityAfterDrain: an async batch is acknowledged
// with 202 + queue metadata, and after the background drain the records
// are served by /v2/records and by the analytics cache path.
func TestAsync202AndVisibilityAfterDrain(t *testing.T) {
	srv, client, grid, done := newAsyncTestServer(t, 0)
	defer done()

	const steps = 8
	p := grid.Center(5)
	releases := make([]wire.Release, steps)
	for i := range releases {
		releases[i] = wire.Release{T: i, X: p.X, Y: p.Y}
	}
	body, _ := json.Marshal(wire.BatchReportRequest{User: 1, PolicyVersion: 1, Releases: releases})
	resp, err := http.Post(client.baseURL()+"/v2/reports?mode=async", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async report status = %d, want 202", resp.StatusCode)
	}
	var ack wire.AsyncReportResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Queued != steps || ack.PolicyVersion != 1 {
		t.Fatalf("ack = %+v, want queued=%d version=1", ack, steps)
	}

	waitDrained(t, srv)
	recs, err := client.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != steps {
		t.Fatalf("%d records after drain, want %d", len(recs), steps)
	}
	// Analytics sees the drained writes: the store generation bumped, so
	// the engine cannot serve a pre-drain cached aggregate.
	sum := 0
	for _, c := range client.mustDensity(t, steps-1) {
		sum += c
	}
	if sum != 1 {
		t.Fatalf("density after drain sums to %d, want 1", sum)
	}
}

// mustDensity fetches /v2/density at t with 2x2 blocks.
func (c *Client) mustDensity(t *testing.T, at int) []int {
	t.Helper()
	counts, err := c.Density(at, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

// TestAsyncCacheInvalidationAcrossDrain pins the cache-coherence story
// end to end: query an aggregate (priming the engine cache), async-
// ingest records into the same timestep, and check the recomputed
// aggregate after the drain.
func TestAsyncCacheInvalidationAcrossDrain(t *testing.T) {
	srv, client, grid, done := newAsyncTestServer(t, 0)
	defer done()

	// Prime the cache on an empty timestep.
	if sum := sumOf(client.mustDensity(t, 0)); sum != 0 {
		t.Fatalf("pre-ingest density sums to %d, want 0", sum)
	}
	p := grid.Center(3)
	if _, err := client.ReportBatchAsync(1, []wire.Release{{T: 0, X: p.X, Y: p.Y}}); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, srv)
	if sum := sumOf(client.mustDensity(t, 0)); sum != 1 {
		t.Fatalf("post-drain density sums to %d, want 1 (stale cache served?)", sum)
	}
}

func sumOf(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// gatedSink blocks every apply until its gate is closed, so a test can
// hold the ingest queue full deterministically.
type gatedSink struct{ gate chan struct{} }

func (s *gatedSink) InsertBatch(recs []Record) int {
	<-s.gate
	return len(recs)
}

// TestAsyncBackpressure429: with the queue genuinely full (workers
// stalled), an admissible batch is rejected with 429, the queue_full
// code, a retry_after_ms hint, and a Retry-After header.
func TestAsyncBackpressure429(t *testing.T) {
	grid := geo.MustGrid(4, 4, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDBOn(grid, NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	sink := &gatedSink{gate: make(chan struct{})}
	q, err := ingest.New(sink, ingest.Config{Workers: 1, QueueDepth: 4, MaxApply: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{db: db, mgr: mgr, queue: q}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		close(sink.gate)
		srv.DrainIngest(context.Background())
	}()

	// Fill the queue to capacity; the worker stalls in the sink.
	if _, err := q.TryEnqueue([]Record{{User: 9, T: 0, Cell: 1}, {User: 9, T: 1, Cell: 1},
		{User: 9, T: 2, Cell: 1}, {User: 9, T: 3, Cell: 1}}); err != nil {
		t.Fatal(err)
	}

	p := grid.Center(5)
	body, _ := json.Marshal(wire.BatchReportRequest{
		User: 1, PolicyVersion: 1, Releases: []wire.Release{{T: 0, X: p.X, Y: p.Y}},
	})
	resp, err := http.Post(ts.URL+"/v2/reports?mode=async", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if h := resp.Header.Get("Retry-After"); h == "" {
		t.Error("429 carries no Retry-After header")
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeQueueFull {
		t.Errorf("code = %q, want %q", e.Code, wire.CodeQueueFull)
	}
	if e.RetryAfterMS <= 0 {
		t.Errorf("retry_after_ms = %d, want > 0", e.RetryAfterMS)
	}
}

// TestAsyncBatchExceedsCapacity413: a batch larger than the whole queue
// can never be admitted, so it must be a non-retriable 413 bad_request
// — not a 429 that clients would re-upload to exhaustion.
func TestAsyncBatchExceedsCapacity413(t *testing.T) {
	_, client, grid, done := newAsyncTestServer(t, 4) // queue bound: 4 records
	defer done()

	p := grid.Center(5)
	releases := make([]wire.Release, 5) // 5 > 4
	for i := range releases {
		releases[i] = wire.Release{T: i, X: p.X, Y: p.Y}
	}
	body, _ := json.Marshal(wire.BatchReportRequest{User: 1, PolicyVersion: 1, Releases: releases})
	resp, err := http.Post(client.baseURL()+"/v2/reports?mode=async", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != wire.CodeBadRequest || e.RetryAfterMS != 0 {
		t.Errorf("envelope = %+v, want bad_request with no retry hint", e)
	}
}

// TestAsyncModeValidation: bad mode values 400; validation failures are
// rejected before acknowledgement (no 202 for garbage).
func TestAsyncModeValidation(t *testing.T) {
	_, client, grid, done := newAsyncTestServer(t, 0)
	defer done()
	base := client.baseURL()

	p := grid.Center(1)
	good := fmt.Sprintf(`{"user":1,"policy_version":1,"releases":[{"t":0,"x":%v,"y":%v}]}`, p.X, p.Y)
	status, e := postV2(t, base, "/v2/reports?mode=banana", good)
	if status != http.StatusBadRequest || e.Code != wire.CodeBadRequest {
		t.Fatalf("mode=banana: status=%d code=%q, want 400 bad_request", status, e.Code)
	}

	bad := `{"user":1,"policy_version":1,"releases":[{"t":-3,"x":0,"y":0}]}`
	status, e = postV2(t, base, "/v2/reports?mode=async", bad)
	if status != http.StatusBadRequest || e.Code != wire.CodeBadRequest {
		t.Fatalf("invalid record: status=%d code=%q, want 400 bad_request (never a 202)", status, e.Code)
	}

	// mode=sync forces the synchronous path even on an async server.
	resp, err := http.Post(base+"/v2/reports?mode=sync", "application/json", strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mode=sync status = %d, want 200", resp.StatusCode)
	}
	var sync wire.BatchReportResponse
	if err := json.NewDecoder(resp.Body).Decode(&sync); err != nil {
		t.Fatal(err)
	}
	if sync.Accepted != 1 {
		t.Fatalf("sync response = %+v, want accepted=1", sync)
	}
}

// TestAsyncFallbackOnSyncServer: ?mode=async against a server without a
// queue falls back to the synchronous path, and the client surfaces it
// as SyncFallback.
func TestAsyncFallbackOnSyncServer(t *testing.T) {
	_, client, grid, done := newTestServer(t) // no async ingest
	defer done()
	p := grid.Center(2)
	ack, err := client.ReportBatchAsync(3, []wire.Release{{T: 0, X: p.X, Y: p.Y}})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.SyncFallback || ack.Queued != 1 {
		t.Fatalf("ack = %+v, want SyncFallback with 1 queued", ack)
	}
	recs, err := client.Records(3)
	if err != nil || len(recs) != 1 {
		t.Fatalf("records = %v (err %v), want 1 record applied synchronously", recs, err)
	}
}

// TestAsyncRejectedBeforeQueue: consent and policy-staleness checks run
// before the enqueue, so async mode never acknowledges a report the
// sync path would refuse.
func TestAsyncRejectedBeforeQueue(t *testing.T) {
	srv, client, grid, done := newAsyncTestServer(t, 0)
	defer done()
	base := client.baseURL()
	p := grid.Center(1)

	srv.mgr.Get(7)
	srv.mgr.Consent(7, false)
	body := fmt.Sprintf(`{"user":7,"policy_version":1,"releases":[{"t":0,"x":%v,"y":%v}]}`, p.X, p.Y)
	if status, e := postV2(t, base, "/v2/reports?mode=async", body); status != http.StatusForbidden || e.Code != wire.CodeConsent {
		t.Fatalf("non-consenting async report: status=%d code=%q, want 403 consent_required", status, e.Code)
	}

	stale := fmt.Sprintf(`{"user":1,"policy_version":99,"releases":[{"t":0,"x":%v,"y":%v}]}`, p.X, p.Y)
	if status, e := postV2(t, base, "/v2/reports?mode=async", stale); status != http.StatusConflict || e.Code != wire.CodeStalePolicy {
		t.Fatalf("stale async report: status=%d code=%q, want 409 stale_policy", status, e.Code)
	}
}

// TestIngestStatsEndpoint: the observability endpoint reports queue
// configuration and counters, and enabled=false on sync-only servers.
func TestIngestStatsEndpoint(t *testing.T) {
	srv, client, grid, done := newAsyncTestServer(t, 128)
	defer done()

	st, err := client.IngestStats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Capacity != 128 || st.Workers != 2 {
		t.Fatalf("stats = %+v, want enabled, capacity 128, 2 workers", st)
	}
	p := grid.Center(5)
	if _, err := client.ReportBatchAsync(1, []wire.Release{{T: 0, X: p.X, Y: p.Y}}); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, srv)
	st, err = client.IngestStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Enqueued != 1 || st.Drained != 1 || st.Depth != 0 {
		t.Fatalf("stats after drain = %+v, want enqueued=1 drained=1 depth=0", st)
	}

	_, syncClient, _, syncDone := newTestServer(t)
	defer syncDone()
	st, err = syncClient.IngestStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("sync-only server reports enabled ingest stats: %+v", st)
	}
}

// TestDrainIngestAppliesAcked: every batch acknowledged with 202 is in
// the store after DrainIngest returns — the graceful-shutdown
// guarantee the server's SIGTERM path relies on.
func TestDrainIngestAppliesAcked(t *testing.T) {
	srv, client, grid, done := newAsyncTestServer(t, 0)
	defer done()

	const users, steps = 10, 20
	p := grid.Center(6)
	for u := 0; u < users; u++ {
		releases := make([]wire.Release, steps)
		for i := range releases {
			releases[i] = wire.Release{T: i, X: p.X, Y: p.Y}
		}
		if _, err := client.ReportBatchAsync(u, releases); err != nil {
			t.Fatalf("user %d: %v", u, err)
		}
	}
	if err := srv.DrainIngest(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := srv.DB().Len(); got != users*steps {
		t.Fatalf("store has %d records after drain, want %d", got, users*steps)
	}
	// The queue is closed: further async sends get 503 unavailable.
	body := fmt.Sprintf(`{"user":1,"policy_version":1,"releases":[{"t":99,"x":%v,"y":%v}]}`, p.X, p.Y)
	status, e := postV2(t, client.baseURL(), "/v2/reports?mode=async", body)
	if status != http.StatusServiceUnavailable || e.Code != wire.CodeUnavailable {
		t.Fatalf("post-drain async report: status=%d code=%q, want 503 unavailable", status, e.Code)
	}
}

// TestSaveJSONDuringAsyncDrain is the snapshot-consistency regression:
// a SaveJSON taken while the workers are actively draining must see
// every enqueued batch either fully applied or not at all (the store's
// batch-atomic visibility), never a torn batch.
func TestSaveJSONDuringAsyncDrain(t *testing.T) {
	grid := geo.MustGrid(4, 4, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDBOn(grid, NewShardedStore(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerOpts(db, mgr, Options{AsyncIngest: true, IngestWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}

	const users, steps = 64, 25
	p := grid.Center(9)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for u := 0; u < users; u++ {
			recs := make([]Record, steps)
			for i := range recs {
				recs[i] = Record{User: u, T: i, Point: p, Cell: -1, PolicyVersion: 1}
			}
			normalized, err := db.ValidateBatch(recs)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, err := srv.Ingest().TryEnqueue(normalized); err == nil {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Snapshot repeatedly while the drain is in flight.
	for round := 0; round < 50; round++ {
		var buf bytes.Buffer
		if err := db.SaveJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Records []Record `json:"records"`
		}
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		perUser := make(map[int][]int)
		for _, rec := range snap.Records {
			perUser[rec.User] = append(perUser[rec.User], rec.T)
		}
		for u, ts := range perUser {
			if len(ts) != steps {
				t.Fatalf("round %d: snapshot holds %d of user %d's %d-record batch — torn batch visible",
					round, len(ts), u, steps)
			}
		}
	}
	wg.Wait()
	if err := srv.DrainIngest(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := db.Len(); got != users*steps {
		t.Fatalf("store has %d records after drain, want %d", got, users*steps)
	}
}
