package server

import "github.com/pglp/panda/internal/server/storage"

// Store is the record-storage contract behind the surveillance database,
// re-exported from the storage package (see internal/server/storage for
// the full contract: replace-on-resend inserts, per-user queries, whole-
// dataset and time-range scans, and the write generations that drive
// the analytics caches).
type Store = storage.Store

// NewMemStore returns an empty single-lock in-memory store.
func NewMemStore() Store { return storage.NewMemStore() }

// NewShardedStore returns a store with n independent lock shards keyed by
// user ID. n < 1 is treated as 1.
func NewShardedStore(n int) Store { return storage.NewShardedStore(n) }
