package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
	"github.com/pglp/panda/internal/server/ingest"
	"github.com/pglp/panda/internal/server/wire"
)

// postRaw POSTs body under an explicit Content-Type and returns status +
// decoded error envelope (zero-valued on 2xx).
func postRaw(t *testing.T, base, path, contentType string, body []byte) (int, wire.Error) {
	t.Helper()
	resp, err := http.Post(base+path, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e wire.Error
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e
}

// TestBinaryJSONEquivalence sends the same releases through the JSON
// and binary report paths and checks the stored state is identical:
// same cells, bit-identical coordinates, same accepted/replaced
// accounting — the negotiated encoding must be an optimization, never a
// semantic fork.
func TestBinaryJSONEquivalence(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()

	releases := []wire.Release{
		{T: 0, X: grid.Center(1).X, Y: grid.Center(1).Y},
		{T: 1, X: 1.25, Y: 2.75},
		{T: 2, X: 0.1234567890123, Y: 3.9876543210987},
	}
	jr, err := client.ReportBatch(1, releases)
	if err != nil {
		t.Fatal(err)
	}
	br, err := client.ReportBatchBinary(2, releases)
	if err != nil {
		t.Fatal(err)
	}
	if jr != br {
		t.Errorf("responses diverge: json=%+v binary=%+v", jr, br)
	}
	if br.Accepted != len(releases) || br.Replaced != 0 {
		t.Errorf("binary first send: %+v, want accepted=%d replaced=0", br, len(releases))
	}

	jrecs := srv.db.UserRecords(1)
	brecs := srv.db.UserRecords(2)
	if len(jrecs) != len(brecs) {
		t.Fatalf("record counts diverge: json=%d binary=%d", len(jrecs), len(brecs))
	}
	for i := range jrecs {
		j, b := jrecs[i], brecs[i]
		if j.T != b.T || j.Cell != b.Cell || j.PolicyVersion != b.PolicyVersion {
			t.Errorf("record %d diverges: json=%+v binary=%+v", i, j, b)
		}
		if math.Float64bits(j.Point.X) != math.Float64bits(b.Point.X) ||
			math.Float64bits(j.Point.Y) != math.Float64bits(b.Point.Y) {
			t.Errorf("record %d coordinates not bit-identical: json=%v binary=%v", i, j.Point, b.Point)
		}
	}

	// Re-send: the (user, t) replace semantics must hold on the binary
	// path too.
	br2, err := client.ReportBatchBinary(2, releases)
	if err != nil {
		t.Fatal(err)
	}
	if br2.Accepted != 0 || br2.Replaced != len(releases) {
		t.Errorf("binary re-send: %+v, want accepted=0 replaced=%d", br2, len(releases))
	}
}

// TestBinaryContentNegotiation pins the negotiation matrix of
// POST /v2/reports: JSON by default, binary by content type (parameters
// tolerated), everything else 415 with the machine-readable code.
func TestBinaryContentNegotiation(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()

	p := grid.Center(3)
	binBody := wire.AppendBinaryReport(nil, 5, 1, []wire.Release{{T: 0, X: p.X, Y: p.Y}})

	cases := []struct {
		name, ct string
		body     []byte
		status   int
		code     string
	}{
		{"binary ok", wire.ContentTypeBinary, binBody, http.StatusOK, ""},
		{"binary with params", wire.ContentTypeBinary + "; v=1", binBody, http.StatusOK, ""},
		{"csv rejected", "text/csv", binBody, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia},
		{"json ct with binary body", "application/json", binBody, http.StatusBadRequest, wire.CodeBadRequest},
		{"binary ct with json body", wire.ContentTypeBinary,
			[]byte(`{"user":5,"policy_version":1,"releases":[{"t":0,"x":0,"y":0}]}`),
			http.StatusBadRequest, wire.CodeBadRequest},
		{"binary truncated", wire.ContentTypeBinary, binBody[:len(binBody)-3],
			http.StatusBadRequest, wire.CodeBadRequest},
	}
	for _, tc := range cases {
		status, e := postRaw(t, base, "/v2/reports", tc.ct, tc.body)
		if status != tc.status || e.Code != tc.code {
			t.Errorf("%s: status=%d code=%q (%s), want %d %q", tc.name, status, e.Code, e.Error, tc.status, tc.code)
		}
	}

	// The 415 must name both acceptable types, so a misconfigured client
	// can fix itself from the message alone.
	_, e := postRaw(t, base, "/v2/reports", "text/plain", []byte("hi"))
	if !strings.Contains(e.Error, "application/json") || !strings.Contains(e.Error, wire.ContentTypeBinary) {
		t.Errorf("415 message %q does not name the acceptable content types", e.Error)
	}
}

// TestBinaryStaleAndConsent drives the protocol error paths through the
// binary encoding: version 0 refused, stale version renegotiates with
// the policy inline, non-consenting user 403s.
func TestBinaryStaleAndConsent(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()

	p := grid.Center(2)
	rel := []wire.Release{{T: 0, X: p.X, Y: p.Y}}

	status, e := postRaw(t, base, "/v2/reports", wire.ContentTypeBinary, wire.AppendBinaryReport(nil, 3, 99, rel))
	if status != http.StatusConflict || e.Code != wire.CodeStalePolicy {
		t.Errorf("stale version: status=%d code=%q, want 409 %q", status, e.Code, wire.CodeStalePolicy)
	}
	if e.Policy == nil || e.Policy.Version != 1 {
		t.Errorf("stale 409 should carry the current policy inline, got %+v", e.Policy)
	}

	srv.mgr.Get(7)
	srv.mgr.Consent(7, false)
	status, e = postRaw(t, base, "/v2/reports", wire.ContentTypeBinary, wire.AppendBinaryReport(nil, 7, 1, rel))
	if status != http.StatusForbidden || e.Code != wire.CodeConsent {
		t.Errorf("no consent: status=%d code=%q, want 403 %q", status, e.Code, wire.CodeConsent)
	}
}

// TestBinaryClientRenegotiation bumps the policy behind the client's
// back and checks the binary path re-encodes the batch under the new
// version — unlike JSON, the version lives in every frame, so the retry
// must rebuild the body, not just patch a field.
func TestBinaryClientRenegotiation(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()

	if _, err := client.ReportBatchBinary(0, []wire.Release{{T: 0, X: grid.Center(1).X, Y: grid.Center(1).Y}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.MarkInfected([]int{5}); err != nil {
		t.Fatal(err)
	}
	res, err := client.ReportBatchBinary(0, []wire.Release{{T: 1, X: grid.Center(2).X, Y: grid.Center(2).Y}})
	if err != nil {
		t.Fatalf("binary report after policy bump should auto-renegotiate, got %v", err)
	}
	if res.PolicyVersion != 2 {
		t.Errorf("accepted under version %d, want 2", res.PolicyVersion)
	}
	if cp, ok := client.CachedPolicy(0); !ok || cp.Version != 2 {
		t.Errorf("cached policy = %+v, want version 2", cp)
	}
	if recs, _ := client.Records(0); len(recs) != 2 {
		t.Errorf("records = %d, want 2 (renegotiation must not drop the report)", len(recs))
	}
}

// TestBinaryAsyncIngest drives a binary batch through the async queue:
// 202 early ack, then the drained records match what was sent bit for
// bit.
func TestBinaryAsyncIngest(t *testing.T) {
	srv, client, grid, done := newAsyncTestServer(t, 0)
	defer done()

	releases := []wire.Release{
		{T: 0, X: grid.Center(1).X, Y: grid.Center(1).Y},
		{T: 1, X: 2.5, Y: 1.5},
	}
	ack, err := client.ReportBatchBinaryAsync(11, releases)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Queued != len(releases) || ack.SyncFallback {
		t.Fatalf("ack = %+v, want queued=%d sync_fallback=false", ack, len(releases))
	}
	waitDrained(t, srv)
	recs := srv.db.UserRecords(11)
	if len(recs) != len(releases) {
		t.Fatalf("drained records = %d, want %d", len(recs), len(releases))
	}
	for i, rel := range releases {
		if math.Float64bits(recs[i].Point.X) != math.Float64bits(rel.X) ||
			math.Float64bits(recs[i].Point.Y) != math.Float64bits(rel.Y) {
			t.Errorf("record %d coordinates not bit-identical: sent (%v,%v), stored %v",
				i, rel.X, rel.Y, recs[i].Point)
		}
		if recs[i].Cell != grid.Snap(geo.Pt(rel.X, rel.Y)) {
			t.Errorf("record %d cell = %d, want snapped %d", i, recs[i].Cell, grid.Snap(geo.Pt(rel.X, rel.Y)))
		}
	}
}

// TestFairnessHTTP floods the async endpoint from one hot user until it
// is throttled and checks a well-behaved user still gets a 202 — the
// per-user budget protects the queue's remaining capacity instead of
// letting one client starve everyone.
func TestFairnessHTTP(t *testing.T) {
	grid := geo.MustGrid(4, 4, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDBOn(grid, NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	sink := &gatedSink{gate: make(chan struct{})}
	q, err := ingest.New(sink, ingest.Config{Workers: 1, QueueDepth: 100, MaxApply: 1, MaxUserPending: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{db: db, mgr: mgr, queue: q}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		close(sink.gate)
		srv.DrainIngest(context.Background())
	}()

	p := grid.Center(5)
	report := func(user int, t0 int) []byte {
		return wire.AppendBinaryReport(nil, user, 1, []wire.Release{{T: t0, X: p.X, Y: p.Y}})
	}

	// Flood from the hot user until the fairness budget throttles it.
	throttled := false
	for i := 0; i < 50 && !throttled; i++ {
		status, e := postRaw(t, ts.URL, "/v2/reports?mode=async", wire.ContentTypeBinary, report(1, i))
		switch status {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			if e.Code != wire.CodeQueueFull {
				t.Fatalf("throttle code = %q, want %q", e.Code, wire.CodeQueueFull)
			}
			if e.RetryAfterMS <= 0 {
				t.Errorf("throttle carries no retry hint: %+v", e)
			}
			throttled = true
		default:
			t.Fatalf("hot user got status %d (%+v)", status, e)
		}
	}
	if !throttled {
		t.Fatal("hot user was never throttled despite MaxUserPending=8")
	}

	// A different user must still be admitted: the queue has 90+ free
	// slots, only the hot user's budget is exhausted.
	status, e := postRaw(t, ts.URL, "/v2/reports?mode=async", wire.ContentTypeBinary, report(2, 0))
	if status != http.StatusAccepted {
		t.Fatalf("well-behaved user got status %d (%+v), want 202", status, e)
	}

	// The stats surface must attribute the rejections to the fairness
	// budget.
	st := srv.Ingest().Stats()
	if st.Throttled == 0 || st.Throttled > st.Rejected {
		t.Errorf("throttled = %d (rejected = %d), want 0 < throttled <= rejected", st.Throttled, st.Rejected)
	}
	if st.UserCap != 8 {
		t.Errorf("user cap = %d, want 8", st.UserCap)
	}

	// A single batch larger than the per-user budget can never be queued
	// — that must be a terminal 413, not a retriable 429.
	big := make([]wire.Release, 9)
	for i := range big {
		big[i] = wire.Release{T: 100 + i, X: p.X, Y: p.Y}
	}
	status, e = postRaw(t, ts.URL, "/v2/reports?mode=async", wire.ContentTypeBinary,
		wire.AppendBinaryReport(nil, 3, 1, big))
	if status != http.StatusRequestEntityTooLarge || e.Code != wire.CodeBadRequest {
		t.Errorf("over-budget batch: status=%d code=%q, want 413 %q", status, e.Code, wire.CodeBadRequest)
	}
}
