package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
	"github.com/pglp/panda/internal/server/ingest"
)

// Server exposes the surveillance backend over HTTP, in two wire
// versions (see API.md for the full contract).
//
// /v1 — the legacy surface. Wire shapes are frozen and the
// policy_version-0 skip is preserved bug-for-bug, but this release
// tightened two behaviors shared with /v2: parameter ranges are now
// validated (negative t, inverted ranges, non-positive window → 400)
// and health-code windows anchor at an explicit clock (see API.md):
//
//	POST /v1/report      {user, t, x, y, policy_version} → 204
//	GET  /v1/policy?user=ID                              → policy JSON
//	POST /v1/infected    {cells: [...]}                  → {changed: [...]}
//	GET  /v1/healthcode?user=ID&window=W&now=T           → {code}
//	GET  /v1/density?t=T&block_rows=R&block_cols=C       → {counts: [...]}
//	GET  /v1/records?user=ID                             → [records]
//
// /v2 — the typed protocol of the wire package: batch reporting, cursor
// pagination, a uniform {error, code} envelope, and inline policy
// renegotiation on stale versions (see httpv2.go).
type Server struct {
	db  *DB
	mgr *policy.Manager
	// queue is the async ingestion pipeline behind POST /v2/reports'
	// ?mode=async; nil when async ingest is disabled (async requests
	// then fall back to synchronous handling).
	queue *ingest.Queue
}

// Options configures the optional server subsystems.
type Options struct {
	// AsyncIngest enables the early-acknowledgement mode of
	// POST /v2/reports: a bounded queue with background workers that
	// batch-apply into the Store (see the ingest package).
	AsyncIngest bool
	// IngestWorkers is the number of drain workers; <= 0 uses
	// GOMAXPROCS. Only meaningful with AsyncIngest.
	IngestWorkers int
	// IngestQueueDepth bounds the queue in records; <= 0 uses
	// ingest.DefaultQueueDepth. Only meaningful with AsyncIngest.
	IngestQueueDepth int
	// IngestMaxUserPending bounds one user's un-applied records in the
	// queue — the fairness budget that keeps a hot client from starving
	// everyone else into 429s. 0 defaults to half the queue depth;
	// negative disables per-user accounting. Only meaningful with
	// AsyncIngest.
	IngestMaxUserPending int
}

// NewServer wires a database and a policy manager with async ingest
// disabled.
func NewServer(db *DB, mgr *policy.Manager) (*Server, error) {
	return NewServerOpts(db, mgr, Options{})
}

// NewServerOpts wires a database and a policy manager under explicit
// options. With Options.AsyncIngest the server owns an ingestion queue;
// call DrainIngest before closing the store so acknowledged batches are
// applied.
func NewServerOpts(db *DB, mgr *policy.Manager, o Options) (*Server, error) {
	if db == nil || mgr == nil {
		return nil, errors.New("server: nil db or policy manager")
	}
	s := &Server{db: db, mgr: mgr}
	if o.AsyncIngest {
		depth := o.IngestQueueDepth
		if depth <= 0 {
			depth = ingest.DefaultQueueDepth
		}
		userCap := o.IngestMaxUserPending
		switch {
		case userCap == 0:
			userCap = depth / 2
		case userCap < 0:
			userCap = 0
		}
		// Stripe-pin the drain workers when the store exposes its shard
		// fan-out (sharded memory store, striped WAL): coalesced batches
		// then stay within each worker's stripe subset.
		shards := 0
		if sh, ok := db.Store().(interface{ NumShards() int }); ok {
			shards = sh.NumShards()
		}
		q, err := ingest.New(db.Store(), ingest.Config{
			Workers:        o.IngestWorkers,
			QueueDepth:     depth,
			Shards:         shards,
			MaxUserPending: userCap,
		})
		if err != nil {
			return nil, err
		}
		s.queue = q
	}
	return s, nil
}

// Ingest returns the async ingestion queue, nil when async ingest is
// disabled.
func (s *Server) Ingest() *ingest.Queue { return s.queue }

// DrainIngest stops the async ingestion queue and waits for every
// queued batch to be applied to the Store; if ctx expires first, the
// remainder is discarded and ctx's error returned. It is a no-op when
// async ingest is disabled. Call it during graceful shutdown after the
// HTTP server stops accepting requests and before the store is closed.
func (s *Server) DrainIngest(ctx context.Context) error {
	if s.queue == nil {
		return nil
	}
	return s.queue.Close(ctx)
}

// DB exposes the underlying database (the apps query it directly when
// embedded in-process).
func (s *Server) DB() *DB { return s.db }

// Handler returns the HTTP routing for the server: both the legacy /v1
// surface and the typed /v2 surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/policy", s.handlePolicy)
	mux.HandleFunc("POST /v1/infected", s.handleInfected)
	mux.HandleFunc("GET /v1/healthcode", s.handleHealthCode)
	mux.HandleFunc("GET /v1/density", s.handleDensity)
	mux.HandleFunc("GET /v1/records", s.handleRecords)
	mux.HandleFunc("GET /v1/density_series", s.handleDensitySeries)
	mux.HandleFunc("GET /v1/exposure", s.handleExposure)
	mux.HandleFunc("GET /v1/census", s.handleCensus)
	s.routeV2(mux)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// reportRequest is the wire form of a /v1 location report.
type reportRequest struct {
	User          int     `json:"user"`
	T             int     `json:"t"`
	X             float64 `json:"x"`
	Y             float64 `json:"y"`
	PolicyVersion int     `json:"policy_version"`
}

// handleReport ingests one release. Legacy quirk, kept for /v1
// compatibility: policy_version 0 means "unset" and skips the staleness
// check entirely, so old clients that never learned about versions keep
// working. /v2 makes the version mandatory — use POST /v2/reports for
// enforced renegotiation.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding report: %v", err)
		return
	}
	up := s.mgr.Get(req.User)
	if !up.Consented {
		httpError(w, http.StatusForbidden, "user %d has not consented to the current policy", req.User)
		return
	}
	if req.PolicyVersion != 0 && req.PolicyVersion != up.Version {
		httpError(w, http.StatusConflict, "stale policy version %d (current %d)", req.PolicyVersion, up.Version)
		return
	}
	rec := Record{User: req.User, T: req.T, Point: geo.Pt(req.X, req.Y), Cell: -1, PolicyVersion: up.Version}
	if err := s.db.Insert(rec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// policyResponse is the wire form of a user policy. The graph is included
// verbatim: publishing policy graphs is part of the transparency story.
type policyResponse struct {
	User    int             `json:"user"`
	Epsilon float64         `json:"epsilon"`
	Version int             `json:"version"`
	Graph   json.RawMessage `json:"graph"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	up := s.mgr.Get(user)
	graph, err := json.Marshal(up.Graph)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding graph: %v", err)
		return
	}
	writeJSON(w, policyResponse{User: user, Epsilon: up.Epsilon, Version: up.Version, Graph: graph})
}

type infectedRequest struct {
	Cells []int `json:"cells"`
}

func (s *Server) handleInfected(w http.ResponseWriter, r *http.Request) {
	var req infectedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding infected cells: %v", err)
		return
	}
	changed := s.mgr.MarkInfected(req.Cells)
	if changed == nil {
		changed = []int{}
	}
	writeJSON(w, map[string][]int{"changed": changed})
}

func (s *Server) handleHealthCode(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	window, err := queryIntOpt(r, "window", 0, 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	now, err := queryIntOpt(r, "now", -1, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := s.db.HealthCodeFor(user, s.mgr.InfectedCells(), window, now)
	writeJSON(w, map[string]string{"code": string(code)})
}

func (s *Server) handleDensity(w http.ResponseWriter, r *http.Request) {
	t, err := queryIntMin(r, "t", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	br, bc, err := queryBlocks(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string][]int{"counts": s.db.DensityAt(t, br, bc)})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, s.db.UserRecords(user))
}

func (s *Server) handleDensitySeries(w http.ResponseWriter, r *http.Request) {
	t0, t1, err := queryTimeRange(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	br, bc, err := queryBlocks(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	series, err := s.db.DensitySeries(t0, t1, br, bc)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string][][]int{"series": series})
}

func (s *Server) handleExposure(w http.ResponseWriter, r *http.Request) {
	t0, t1, err := queryTimeRange(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	series, err := s.db.InfectedExposureSeries(t0, t1, s.mgr.InfectedCells())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string][]int{"exposure": series})
}

func (s *Server) handleCensus(w http.ResponseWriter, r *http.Request) {
	window, err := queryIntOpt(r, "window", 0, 1)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	now, err := queryIntOpt(r, "now", -1, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	census := s.db.CodeCensus(s.mgr.InfectedCells(), window, now)
	out := make(map[string]int, len(census))
	for code, n := range census {
		out[string(code)] = n
	}
	writeJSON(w, out)
}

// --- central query-parameter parsing and range validation ---
//
// Every handler (both wire versions) parses parameters through these
// helpers so range rules live in one place: timesteps are non-negative,
// time ranges are ordered, windows are positive, block dimensions are
// positive.

// queryInt parses a required integer parameter.
func queryInt(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", key, err)
	}
	return v, nil
}

// queryIntMin parses a required integer parameter and rejects values
// below min.
func queryIntMin(r *http.Request, key string, min int) (int, error) {
	v, err := queryInt(r, key)
	if err != nil {
		return 0, err
	}
	if v < min {
		return 0, fmt.Errorf("parameter %q must be >= %d, got %d", key, min, v)
	}
	return v, nil
}

// queryIntOpt parses an optional integer parameter: absent returns def;
// present values below min are rejected.
func queryIntOpt(r *http.Request, key string, def, min int) (int, error) {
	if r.URL.Query().Get(key) == "" {
		return def, nil
	}
	return queryIntMin(r, key, min)
}

// maxSeriesSpan bounds one range query's timestep count: series
// responses and the engine's per-timestep work are O(t1-t0), so an
// unbounded span would let one request allocate without limit. It is
// deliberately far below the engine's cache capacity so no single
// request can churn the whole density cache.
const maxSeriesSpan = 10_000

// queryTimeRange parses t0 and t1 and enforces 0 <= t0 <= t1 with at
// most maxSeriesSpan timesteps in the range.
func queryTimeRange(r *http.Request) (t0, t1 int, err error) {
	if t0, err = queryIntMin(r, "t0", 0); err != nil {
		return 0, 0, err
	}
	if t1, err = queryIntMin(r, "t1", 0); err != nil {
		return 0, 0, err
	}
	if t0 > t1 {
		return 0, 0, fmt.Errorf("inverted time range [%d, %d]", t0, t1)
	}
	// t1-t0 cannot overflow (both are >= 0); t1-t0+1 could for
	// t1 = MaxInt, so compare without the +1.
	if t1-t0 >= maxSeriesSpan {
		return 0, 0, fmt.Errorf("time range [%d, %d] spans more than the limit of %d timesteps",
			t0, t1, maxSeriesSpan)
	}
	return t0, t1, nil
}

// queryBlocks parses block_rows and block_cols, both required positive.
func queryBlocks(r *http.Request) (br, bc int, err error) {
	if br, err = queryIntMin(r, "block_rows", 1); err != nil {
		return 0, 0, err
	}
	if bc, err = queryIntMin(r, "block_cols", 1); err != nil {
		return 0, 0, err
	}
	return br, bc, nil
}
