package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
)

// Server exposes the surveillance backend over HTTP. Endpoints:
//
//	POST /v1/report      {user, t, x, y, policy_version} → 204
//	GET  /v1/policy?user=ID                              → policy JSON
//	POST /v1/infected    {cells: [...]}                  → {changed: [...]}
//	GET  /v1/healthcode?user=ID&window=W                 → {code}
//	GET  /v1/density?t=T&block_rows=R&block_cols=C       → {counts: [...]}
//	GET  /v1/records?user=ID                             → [records]
type Server struct {
	db  *DB
	mgr *policy.Manager
}

// NewServer wires a database and a policy manager.
func NewServer(db *DB, mgr *policy.Manager) (*Server, error) {
	if db == nil || mgr == nil {
		return nil, fmt.Errorf("server: nil db or policy manager")
	}
	return &Server{db: db, mgr: mgr}, nil
}

// DB exposes the underlying database (the apps query it directly when
// embedded in-process).
func (s *Server) DB() *DB { return s.db }

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/policy", s.handlePolicy)
	mux.HandleFunc("POST /v1/infected", s.handleInfected)
	mux.HandleFunc("GET /v1/healthcode", s.handleHealthCode)
	mux.HandleFunc("GET /v1/density", s.handleDensity)
	mux.HandleFunc("GET /v1/records", s.handleRecords)
	mux.HandleFunc("GET /v1/density_series", s.handleDensitySeries)
	mux.HandleFunc("GET /v1/exposure", s.handleExposure)
	mux.HandleFunc("GET /v1/census", s.handleCensus)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// reportRequest is the wire form of a location report.
type reportRequest struct {
	User          int     `json:"user"`
	T             int     `json:"t"`
	X             float64 `json:"x"`
	Y             float64 `json:"y"`
	PolicyVersion int     `json:"policy_version"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	var req reportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding report: %v", err)
		return
	}
	up := s.mgr.Get(req.User)
	if !up.Consented {
		httpError(w, http.StatusForbidden, "user %d has not consented to the current policy", req.User)
		return
	}
	if req.PolicyVersion != 0 && req.PolicyVersion != up.Version {
		httpError(w, http.StatusConflict, "stale policy version %d (current %d)", req.PolicyVersion, up.Version)
		return
	}
	rec := Record{User: req.User, T: req.T, Point: geo.Pt(req.X, req.Y), Cell: -1, PolicyVersion: up.Version}
	if err := s.db.Insert(rec); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// policyResponse is the wire form of a user policy. The graph is included
// verbatim: publishing policy graphs is part of the transparency story.
type policyResponse struct {
	User    int             `json:"user"`
	Epsilon float64         `json:"epsilon"`
	Version int             `json:"version"`
	Graph   json.RawMessage `json:"graph"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	up := s.mgr.Get(user)
	graph, err := json.Marshal(up.Graph)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding graph: %v", err)
		return
	}
	writeJSON(w, policyResponse{User: user, Epsilon: up.Epsilon, Version: up.Version, Graph: graph})
}

type infectedRequest struct {
	Cells []int `json:"cells"`
}

func (s *Server) handleInfected(w http.ResponseWriter, r *http.Request) {
	var req infectedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding infected cells: %v", err)
		return
	}
	changed := s.mgr.MarkInfected(req.Cells)
	if changed == nil {
		changed = []int{}
	}
	writeJSON(w, map[string][]int{"changed": changed})
}

func (s *Server) handleHealthCode(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	window := 0
	if r.URL.Query().Get("window") != "" {
		if window, err = queryInt(r, "window"); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	code := s.db.HealthCodeFor(user, s.mgr.InfectedCells(), window)
	writeJSON(w, map[string]string{"code": string(code)})
}

func (s *Server) handleDensity(w http.ResponseWriter, r *http.Request) {
	t, err := queryInt(r, "t")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	br, err := queryInt(r, "block_rows")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bc, err := queryInt(r, "block_cols")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if br <= 0 || bc <= 0 {
		httpError(w, http.StatusBadRequest, "block dimensions must be positive")
		return
	}
	writeJSON(w, map[string][]int{"counts": s.db.DensityAt(t, br, bc)})
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	user, err := queryInt(r, "user")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, s.db.UserRecords(user))
}

func (s *Server) handleDensitySeries(w http.ResponseWriter, r *http.Request) {
	t0, err := queryInt(r, "t0")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	t1, err := queryInt(r, "t1")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	br, err := queryInt(r, "block_rows")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bc, err := queryInt(r, "block_cols")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if br <= 0 || bc <= 0 {
		httpError(w, http.StatusBadRequest, "block dimensions must be positive")
		return
	}
	series, err := s.db.DensitySeries(t0, t1, br, bc)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string][][]int{"series": series})
}

func (s *Server) handleExposure(w http.ResponseWriter, r *http.Request) {
	t0, err := queryInt(r, "t0")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	t1, err := queryInt(r, "t1")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	series, err := s.db.InfectedExposureSeries(t0, t1, s.mgr.InfectedCells())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string][]int{"exposure": series})
}

func (s *Server) handleCensus(w http.ResponseWriter, r *http.Request) {
	window := 0
	if r.URL.Query().Get("window") != "" {
		var err error
		if window, err = queryInt(r, "window"); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	census := s.db.CodeCensus(s.mgr.InfectedCells(), window)
	out := make(map[string]int, len(census))
	for code, n := range census {
		out[string(code)] = n
	}
	writeJSON(w, out)
}

func queryInt(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", key, err)
	}
	return v, nil
}
