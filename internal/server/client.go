package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policygraph"
)

// Client talks to a PANDA server over HTTP; it plays the role of the
// mobile app (the paper's prototype).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the given base URL (e.g.
// "http://localhost:8080"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

func (c *Client) post(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("server client: encoding request: %w", err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("server client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("server client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("server client: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("server client: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding response: %w", err)
	}
	return nil
}

// Report sends a released location.
func (c *Client) Report(user, t int, p geo.Point, policyVersion int) error {
	return c.post("/v1/report", reportRequest{
		User: user, T: t, X: p.X, Y: p.Y, PolicyVersion: policyVersion,
	}, nil)
}

// ClientPolicy is the decoded policy of a user.
type ClientPolicy struct {
	User    int
	Epsilon float64
	Version int
	Graph   *policygraph.Graph
}

// Policy fetches the user's current policy (graph included).
func (c *Client) Policy(user int) (ClientPolicy, error) {
	var raw policyResponse
	if err := c.get(fmt.Sprintf("/v1/policy?user=%d", user), &raw); err != nil {
		return ClientPolicy{}, err
	}
	var g policygraph.Graph
	if err := json.Unmarshal(raw.Graph, &g); err != nil {
		return ClientPolicy{}, fmt.Errorf("server client: decoding policy graph: %w", err)
	}
	return ClientPolicy{User: raw.User, Epsilon: raw.Epsilon, Version: raw.Version, Graph: &g}, nil
}

// MarkInfected publishes newly infected cells; returns affected users.
func (c *Client) MarkInfected(cells []int) ([]int, error) {
	var out map[string][]int
	if err := c.post("/v1/infected", infectedRequest{Cells: cells}, &out); err != nil {
		return nil, err
	}
	return out["changed"], nil
}

// HealthCode fetches the user's certification.
func (c *Client) HealthCode(user, window int) (HealthCode, error) {
	var out map[string]string
	path := fmt.Sprintf("/v1/healthcode?user=%d", user)
	if window > 0 {
		path += fmt.Sprintf("&window=%d", window)
	}
	if err := c.get(path, &out); err != nil {
		return "", err
	}
	return HealthCode(out["code"]), nil
}

// Density fetches regional release counts at a timestep.
func (c *Client) Density(t, blockRows, blockCols int) ([]int, error) {
	var out map[string][]int
	path := fmt.Sprintf("/v1/density?t=%d&block_rows=%d&block_cols=%d", t, blockRows, blockCols)
	if err := c.get(path, &out); err != nil {
		return nil, err
	}
	return out["counts"], nil
}

// Records fetches a user's stored releases.
func (c *Client) Records(user int) ([]Record, error) {
	var out []Record
	if err := c.get(fmt.Sprintf("/v1/records?user=%d", user), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// DensitySeries fetches per-region counts for a timestep range.
func (c *Client) DensitySeries(t0, t1, blockRows, blockCols int) ([][]int, error) {
	var out map[string][][]int
	path := fmt.Sprintf("/v1/density_series?t0=%d&t1=%d&block_rows=%d&block_cols=%d",
		t0, t1, blockRows, blockCols)
	if err := c.get(path, &out); err != nil {
		return nil, err
	}
	return out["series"], nil
}

// Exposure fetches the infected-place exposure series.
func (c *Client) Exposure(t0, t1 int) ([]int, error) {
	var out map[string][]int
	if err := c.get(fmt.Sprintf("/v1/exposure?t0=%d&t1=%d", t0, t1), &out); err != nil {
		return nil, err
	}
	return out["exposure"], nil
}

// Census fetches the population health-code tally.
func (c *Client) Census(window int) (map[HealthCode]int, error) {
	var out map[string]int
	path := "/v1/census"
	if window > 0 {
		path += fmt.Sprintf("?window=%d", window)
	}
	if err := c.get(path, &out); err != nil {
		return nil, err
	}
	census := make(map[HealthCode]int, len(out))
	for code, n := range out {
		census[HealthCode(code)] = n
	}
	return census, nil
}
