package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policygraph"
	"github.com/pglp/panda/internal/server/wire"
)

// Client is a typed client of the /v2 service API; it plays the role of
// the mobile app (the paper's prototype). It caches each user's policy
// and renegotiates automatically: when the server answers 409
// stale_policy it ships the current policy inline, the client adopts it
// and retries the report once — the paper's dynamic-policy update
// without a second round trip.
type Client struct {
	base string
	hc   *http.Client

	mu       sync.Mutex
	policies map[int]ClientPolicy // last policy seen per user
}

// NewClient creates a client for the given base URL (e.g.
// "http://localhost:8080"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient, policies: make(map[int]ClientPolicy)}
}

// APIError is a decoded /v2 error envelope. On CodeStalePolicy, Policy
// carries the server's current policy for the user.
type APIError struct {
	Status  int    // HTTP status
	Code    string // machine-readable wire code
	Message string
	Policy  *wire.Policy // inline renegotiation payload, if any
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server client: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsStalePolicy reports whether err is a stale-policy renegotiation
// response.
func IsStalePolicy(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == wire.CodeStalePolicy
}

func (c *Client) post(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("server client: encoding request: %w", err)
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("server client: POST %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return fmt.Errorf("server client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		// Generous cap: a stale_policy envelope carries a whole policy
		// graph inline, which on a large grid runs to many megabytes —
		// truncating it would silently break renegotiation.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		var e wire.Error
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			code := e.Code
			if code == "" {
				code = "unknown" // /v1 envelopes carry no code
			}
			return &APIError{Status: resp.StatusCode, Code: code, Message: e.Error, Policy: e.Policy}
		}
		return &APIError{Status: resp.StatusCode, Code: "unknown", Message: resp.Status}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding response: %w", err)
	}
	return nil
}

// ClientPolicy is the decoded policy of a user.
type ClientPolicy struct {
	User    int
	Epsilon float64
	Version int
	Graph   *policygraph.Graph
}

func decodePolicy(p wire.Policy) (ClientPolicy, error) {
	cp := ClientPolicy{User: p.User, Epsilon: p.Epsilon, Version: p.Version}
	if len(p.Graph) > 0 {
		var g policygraph.Graph
		if err := json.Unmarshal(p.Graph, &g); err != nil {
			return ClientPolicy{}, fmt.Errorf("server client: decoding policy graph: %w", err)
		}
		cp.Graph = &g
	}
	return cp, nil
}

// Policy fetches the user's current policy (graph included) and caches
// it for automatic version negotiation.
func (c *Client) Policy(user int) (ClientPolicy, error) {
	var raw wire.Policy
	if err := c.get(fmt.Sprintf("/v2/policy?user=%d", user), &raw); err != nil {
		return ClientPolicy{}, err
	}
	cp, err := decodePolicy(raw)
	if err != nil {
		return ClientPolicy{}, err
	}
	c.mu.Lock()
	c.policies[user] = cp
	c.mu.Unlock()
	return cp, nil
}

// CachedPolicy returns the last policy seen for the user, if any.
func (c *Client) CachedPolicy(user int) (ClientPolicy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.policies[user]
	return cp, ok
}

// policyVersion returns the cached version for the user, fetching the
// policy on a cold cache.
func (c *Client) policyVersion(user int) (int, error) {
	if cp, ok := c.CachedPolicy(user); ok {
		return cp.Version, nil
	}
	cp, err := c.Policy(user)
	if err != nil {
		return 0, err
	}
	return cp.Version, nil
}

// adoptStalePolicy absorbs the inline policy of a stale_policy error
// into the cache and reports whether a retry is warranted.
func (c *Client) adoptStalePolicy(user int, err error) bool {
	ae, ok := err.(*APIError)
	if !ok || ae.Code != wire.CodeStalePolicy || ae.Policy == nil {
		return false
	}
	cp, derr := decodePolicy(*ae.Policy)
	if derr != nil {
		return false
	}
	c.mu.Lock()
	c.policies[user] = cp
	c.mu.Unlock()
	return true
}

// ReportBatch sends many releases for one user in one round trip — the
// contact-tracing whole-history re-send. The policy version is managed
// automatically: on a stale-policy conflict the client adopts the
// server's inline policy and retries once under the new version.
//
// The retry re-submits the same releases. Releases are mechanism
// outputs, so re-submitting is safe post-processing of data already
// perturbed under the policy the user had when they were generated —
// but the server stamps stored records with its current version (as
// /v1 always did). Protocol flows that must re-perturb history under
// the renegotiated graph (the paper's contact-tracing re-send) should
// regenerate the batch instead: call CachedPolicy after a failed send
// (or check IsStalePolicy), rebuild the mechanism, and send the new
// releases — or use the in-process panda.User, which rebuilds its
// mechanism on every policy change.
func (c *Client) ReportBatch(user int, releases []wire.Release) (wire.BatchReportResponse, error) {
	ver, err := c.policyVersion(user)
	if err != nil {
		return wire.BatchReportResponse{}, err
	}
	var out wire.BatchReportResponse
	req := wire.BatchReportRequest{User: user, PolicyVersion: ver, Releases: releases}
	err = c.post("/v2/reports", req, &out)
	if err != nil && c.adoptStalePolicy(user, err) {
		req.PolicyVersion, _ = c.policyVersion(user)
		err = c.post("/v2/reports", req, &out)
	}
	if err != nil {
		return wire.BatchReportResponse{}, err
	}
	return out, nil
}

// Report sends a single released location (a batch of one).
func (c *Client) Report(user, t int, p geo.Point) error {
	_, err := c.ReportBatch(user, []wire.Release{{T: t, X: p.X, Y: p.Y}})
	return err
}

// RecordsPage fetches one page of the user's stored releases. An empty
// cursor starts from the beginning; limit <= 0 uses the server default.
func (c *Client) RecordsPage(user int, cursor string, limit int) (wire.RecordsPage, error) {
	q := url.Values{}
	q.Set("user", fmt.Sprint(user))
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	var page wire.RecordsPage
	if err := c.get("/v2/records?"+q.Encode(), &page); err != nil {
		return wire.RecordsPage{}, err
	}
	return page, nil
}

// Records fetches all of a user's stored releases, following pagination
// cursors until the listing is complete.
func (c *Client) Records(user int) ([]Record, error) {
	var out []Record
	cursor := ""
	for {
		page, err := c.RecordsPage(user, cursor, maxPageLimit)
		if err != nil {
			return nil, err
		}
		for _, wr := range page.Records {
			out = append(out, Record{
				User: wr.User, T: wr.T, Point: geo.Pt(wr.X, wr.Y),
				Cell: wr.Cell, PolicyVersion: wr.PolicyVersion,
			})
		}
		if page.NextCursor == "" {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// MarkInfected publishes newly infected cells; returns affected users.
func (c *Client) MarkInfected(cells []int) ([]int, error) {
	var out wire.InfectedResponse
	if err := c.post("/v2/infected", wire.InfectedRequest{Cells: cells}, &out); err != nil {
		return nil, err
	}
	return out.Changed, nil
}

// HealthCode fetches the user's certification over the last `window`
// timesteps anchored at `now` (window <= 0 = all history, now < 0 = the
// server's latest timestep).
func (c *Client) HealthCode(user, window, now int) (HealthCode, error) {
	path := fmt.Sprintf("/v2/healthcode?user=%d", user)
	if window > 0 {
		path += fmt.Sprintf("&window=%d", window)
	}
	if now >= 0 {
		path += fmt.Sprintf("&now=%d", now)
	}
	var out wire.HealthCodeResponse
	if err := c.get(path, &out); err != nil {
		return "", err
	}
	return HealthCode(out.Code), nil
}

// Density fetches regional release counts at a timestep.
func (c *Client) Density(t, blockRows, blockCols int) ([]int, error) {
	var out wire.DensityResponse
	path := fmt.Sprintf("/v2/density?t=%d&block_rows=%d&block_cols=%d", t, blockRows, blockCols)
	if err := c.get(path, &out); err != nil {
		return nil, err
	}
	return out.Counts, nil
}

// DensitySeries fetches per-region counts for a timestep range.
func (c *Client) DensitySeries(t0, t1, blockRows, blockCols int) ([][]int, error) {
	var out wire.DensitySeriesResponse
	path := fmt.Sprintf("/v2/density_series?t0=%d&t1=%d&block_rows=%d&block_cols=%d",
		t0, t1, blockRows, blockCols)
	if err := c.get(path, &out); err != nil {
		return nil, err
	}
	return out.Series, nil
}

// Exposure fetches the infected-place exposure series.
func (c *Client) Exposure(t0, t1 int) ([]int, error) {
	var out wire.ExposureResponse
	if err := c.get(fmt.Sprintf("/v2/exposure?t0=%d&t1=%d", t0, t1), &out); err != nil {
		return nil, err
	}
	return out.Exposure, nil
}

// Census fetches the population health-code tally.
func (c *Client) Census(window, now int) (map[HealthCode]int, error) {
	path := "/v2/census"
	sep := "?"
	if window > 0 {
		path += fmt.Sprintf("%swindow=%d", sep, window)
		sep = "&"
	}
	if now >= 0 {
		path += fmt.Sprintf("%snow=%d", sep, now)
	}
	var out wire.CensusResponse
	if err := c.get(path, &out); err != nil {
		return nil, err
	}
	census := make(map[HealthCode]int, len(out.Census))
	for code, n := range out.Census {
		census[HealthCode(code)] = n
	}
	return census, nil
}
