package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policygraph"
	"github.com/pglp/panda/internal/server/wire"
)

// Client is a typed client of the /v2 service API; it plays the role of
// the mobile app (the paper's prototype). It caches each user's policy
// and renegotiates automatically: when the server answers 409
// stale_policy it ships the current policy inline, the client adopts it
// and retries the report once — the paper's dynamic-policy update
// without a second round trip.
//
// Every request path has a Context variant; the plain methods use
// context.Background(). Transport errors and 5xx responses are retried
// with capped, jittered exponential backoff (see RetryPolicy —
// re-sending reports is safe because ingestion replaces on (user, t)).
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	mu       sync.Mutex
	policies map[int]ClientPolicy // last policy seen per user
}

// RetryPolicy configures the client's handling of transport errors and
// 5xx responses. Non-5xx HTTP errors (4xx, including stale_policy) are
// never retried here — they are protocol outcomes, not transient
// failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 1 mean a single attempt (retry disabled).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Jitter keeps a fleet of clients from
	// synchronizing: the actual sleep is uniform in [d/2, d]. Zero or
	// negative inherits DefaultRetryPolicy's value, so a policy that
	// only sets MaxAttempts still backs off.
	BaseDelay time.Duration
	// MaxDelay caps the (pre-jitter) backoff. Zero or negative inherits
	// DefaultRetryPolicy's value.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the retry used by NewClient unless WithRetry
// overrides it.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}

// Option configures a Client.
type Option func(*Client)

// WithRetry sets the client's retry policy. RetryPolicy{MaxAttempts: 1}
// disables retries.
func WithRetry(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// NewClient creates a client for the given base URL (e.g.
// "http://localhost:8080"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: base, hc: httpClient, retry: DefaultRetryPolicy, policies: make(map[int]ClientPolicy)}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a decoded /v2 error envelope. On CodeStalePolicy, Policy
// carries the server's current policy for the user; on CodeQueueFull
// and CodeNodeDown, RetryAfter carries the server's backoff hint —
// taken from the envelope's retry_after_ms when present, else from a
// Retry-After header (which is how 503s from the cluster router and
// plain proxies announce theirs).
type APIError struct {
	Status     int    // HTTP status
	Code       string // machine-readable wire code
	Message    string
	Policy     *wire.Policy  // inline renegotiation payload, if any
	RetryAfter time.Duration // backoff hint of a 429/503, 0 when none was sent
	Node       string        // cluster node named by a node_unavailable routing error
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server client: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsStalePolicy reports whether err is a stale-policy renegotiation
// response.
func IsStalePolicy(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.Code == wire.CodeStalePolicy
}

// backoff returns the jittered sleep before retry number `retryN` (1-
// based): exponential in BaseDelay, capped at MaxDelay, uniform in
// [d/2, d]. Unset (non-positive) delay fields fall back to
// DefaultRetryPolicy so a tight retry loop is impossible to configure
// by accident.
func (c *Client) backoff(retryN int) time.Duration {
	base, max := c.retry.BaseDelay, c.retry.MaxDelay
	if base <= 0 {
		base = DefaultRetryPolicy.BaseDelay
	}
	if max <= 0 {
		max = DefaultRetryPolicy.MaxDelay
	}
	d := base << (retryN - 1)
	if d <= 0 || d > max { // <= 0: shift overflow on absurd retryN
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-tm.C:
		return nil
	}
}

// do performs one JSON API request with retry; see doBytes for the
// retry contract.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	contentType := ""
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("server client: encoding request: %w", err)
		}
		contentType = "application/json"
	}
	return c.doBytes(ctx, method, path, contentType, data, out)
}

// doBytes performs one API request with a pre-encoded body (sent with
// contentType; an empty contentType means no body) and retry: transport
// errors and 5xx responses are retried up to MaxAttempts with jittered
// exponential backoff, and responses carrying a retry hint — 429
// async-ingest backpressure (retry_after_ms) and 503s with a
// Retry-After header (e.g. the cluster router's node_unavailable) — are
// retried after the hint instead of the backoff curve; everything else
// is decoded (into out or an *APIError) and returned as-is. Taking
// bytes rather than a value keeps the binary report path re-sendable
// across retries without re-encoding.
func (c *Client) doBytes(ctx context.Context, method, path, contentType string, data []byte, out any) error {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			// The previous iteration chose the delay: the 429 hint when
			// the server supplied one, the backoff curve otherwise.
			delay := c.backoff(attempt - 1)
			if ae, ok := lastErr.(*APIError); ok && ae.RetryAfter > 0 {
				// Wait at least the hint — the server derived it from how
				// far its drain is behind, so retrying earlier is a near-
				// guaranteed second 429 — with jitter added on top so a
				// fleet of throttled clients does not re-send in phase.
				// The hint itself is clamped to the policy's MaxDelay: a
				// legitimate server's hint is at most 2s (= the default
				// cap), and a hostile or buggy one must not be able to
				// stall the caller for an hour.
				hint := ae.RetryAfter
				if max := c.retry.MaxDelay; max <= 0 {
					if hint > DefaultRetryPolicy.MaxDelay {
						hint = DefaultRetryPolicy.MaxDelay
					}
				} else if hint > max {
					hint = max
				}
				delay = hint + rand.N(hint/2+1)
			}
			if err := sleepCtx(ctx, delay); err != nil {
				return fmt.Errorf("server client: %s %s: %w (last error: %v)", method, path, err, lastErr)
			}
		}
		var rd io.Reader
		if contentType != "" {
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("server client: %s %s: %w", method, path, err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("server client: %s %s: %w", method, path, err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue
		}
		retriable := resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests
		if retriable && attempt < attempts {
			// Decode the envelope with a small cap — a 429 hint is a few
			// bytes and 5xx pages from intermediaries can be huge; the
			// generous stale_policy limit is for the terminal path only.
			// Reading (vs just discarding) keeps the connection reusable.
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			lastErr = apiErrorFromResponse(resp, body)
			continue
		}
		err = decodeResponse(resp, out)
		resp.Body.Close()
		return err
	}
	return lastErr
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	return c.do(ctx, http.MethodPost, path, body, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, nil, out)
}

// apiErrorFromResponse decodes an error-envelope body into an
// *APIError, falling back to the bare status when the body is not an
// envelope. The backoff hint comes from the envelope's retry_after_ms
// when present; otherwise a Retry-After header fills it in, so 503s
// from the cluster router (and anything else that only speaks the
// standard header) drive the same polite retry as 429 backpressure.
func apiErrorFromResponse(resp *http.Response, body []byte) *APIError {
	headerHint := retryAfterHeader(resp.Header)
	var e wire.Error
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		code := e.Code
		if code == "" {
			code = wire.CodeUnknown // /v1 envelopes carry no code
		}
		hint := time.Duration(e.RetryAfterMS) * time.Millisecond
		if hint <= 0 {
			hint = headerHint
		}
		return &APIError{
			Status: resp.StatusCode, Code: code, Message: e.Error, Policy: e.Policy,
			RetryAfter: hint, Node: e.Node,
		}
	}
	return &APIError{Status: resp.StatusCode, Code: wire.CodeUnknown, Message: resp.Status, RetryAfter: headerHint}
}

// retryAfterHeader parses a Retry-After header's delay-seconds form
// (the only form PANDA servers emit; HTTP-date values are ignored).
func retryAfterHeader(h http.Header) time.Duration {
	raw := h.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode >= 300 {
		// Generous cap: a stale_policy envelope carries a whole policy
		// graph inline, which on a large grid runs to many megabytes —
		// truncating it would silently break renegotiation.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		return apiErrorFromResponse(resp, body)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding response: %w", err)
	}
	return nil
}

// ClientPolicy is the decoded policy of a user.
type ClientPolicy struct {
	User    int
	Epsilon float64
	Version int
	Graph   *policygraph.Graph
}

func decodePolicy(p wire.Policy) (ClientPolicy, error) {
	cp := ClientPolicy{User: p.User, Epsilon: p.Epsilon, Version: p.Version}
	if len(p.Graph) > 0 {
		var g policygraph.Graph
		if err := json.Unmarshal(p.Graph, &g); err != nil {
			return ClientPolicy{}, fmt.Errorf("server client: decoding policy graph: %w", err)
		}
		cp.Graph = &g
	}
	return cp, nil
}

// Policy fetches the user's current policy (graph included) and caches
// it for automatic version negotiation.
func (c *Client) Policy(user int) (ClientPolicy, error) {
	return c.PolicyContext(context.Background(), user)
}

// PolicyContext is Policy under an explicit context.
func (c *Client) PolicyContext(ctx context.Context, user int) (ClientPolicy, error) {
	var raw wire.Policy
	if err := c.get(ctx, fmt.Sprintf("/v2/policy?user=%d", user), &raw); err != nil {
		return ClientPolicy{}, err
	}
	cp, err := decodePolicy(raw)
	if err != nil {
		return ClientPolicy{}, err
	}
	c.mu.Lock()
	c.policies[user] = cp
	c.mu.Unlock()
	return cp, nil
}

// CachedPolicy returns the last policy seen for the user, if any.
func (c *Client) CachedPolicy(user int) (ClientPolicy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.policies[user]
	return cp, ok
}

// policyVersion returns the cached version for the user, fetching the
// policy on a cold cache.
func (c *Client) policyVersion(ctx context.Context, user int) (int, error) {
	if cp, ok := c.CachedPolicy(user); ok {
		return cp.Version, nil
	}
	cp, err := c.PolicyContext(ctx, user)
	if err != nil {
		return 0, err
	}
	return cp.Version, nil
}

// adoptStalePolicy absorbs the inline policy of a stale_policy error
// into the cache and reports whether a retry is warranted.
func (c *Client) adoptStalePolicy(user int, err error) bool {
	ae, ok := err.(*APIError)
	if !ok || ae.Code != wire.CodeStalePolicy || ae.Policy == nil {
		return false
	}
	cp, derr := decodePolicy(*ae.Policy)
	if derr != nil {
		return false
	}
	c.mu.Lock()
	c.policies[user] = cp
	c.mu.Unlock()
	return true
}

// ReportBatch sends many releases for one user in one round trip — the
// contact-tracing whole-history re-send. The policy version is managed
// automatically: on a stale-policy conflict the client adopts the
// server's inline policy and retries once under the new version.
//
// The retry re-submits the same releases. Releases are mechanism
// outputs, so re-submitting is safe post-processing of data already
// perturbed under the policy the user had when they were generated —
// but the server stamps stored records with its current version (as
// /v1 always did). Protocol flows that must re-perturb history under
// the renegotiated graph (the paper's contact-tracing re-send) should
// regenerate the batch instead: call CachedPolicy after a failed send
// (or check IsStalePolicy), rebuild the mechanism, and send the new
// releases — or use the in-process panda.User, which rebuilds its
// mechanism on every policy change.
func (c *Client) ReportBatch(user int, releases []wire.Release) (wire.BatchReportResponse, error) {
	return c.ReportBatchContext(context.Background(), user, releases)
}

// ReportBatchContext is ReportBatch under an explicit context.
func (c *Client) ReportBatchContext(ctx context.Context, user int, releases []wire.Release) (wire.BatchReportResponse, error) {
	ver, err := c.policyVersion(ctx, user)
	if err != nil {
		return wire.BatchReportResponse{}, err
	}
	var out wire.BatchReportResponse
	req := wire.BatchReportRequest{User: user, PolicyVersion: ver, Releases: releases}
	err = c.post(ctx, "/v2/reports", req, &out)
	if err != nil && c.adoptStalePolicy(user, err) {
		req.PolicyVersion, _ = c.policyVersion(ctx, user)
		err = c.post(ctx, "/v2/reports", req, &out)
	}
	if err != nil {
		return wire.BatchReportResponse{}, err
	}
	return out, nil
}

// AsyncAck is the client-side result of an async batch report. When the
// server runs without an ingest queue it falls back to synchronous
// handling; SyncFallback is then true and Queued counts the records
// applied (the ack is stronger than asked for, never weaker).
type AsyncAck struct {
	Queued        int  // records acknowledged
	QueueDepth    int  // records pending behind the ack (0 on sync fallback)
	PolicyVersion int  // version the batch was accepted under
	SyncFallback  bool // server had no queue and applied synchronously
}

// asyncOrSyncResponse decodes either acknowledgement shape of
// POST /v2/reports?mode=async: the 202 AsyncReportResponse or, on
// servers without async ingest, the 200 BatchReportResponse.
type asyncOrSyncResponse struct {
	Queued        *int `json:"queued"`
	QueueDepth    int  `json:"queue_depth"`
	Accepted      *int `json:"accepted"`
	Replaced      int  `json:"replaced"`
	PolicyVersion int  `json:"policy_version"`
}

// ReportBatchAsync sends many releases for one user with early
// acknowledgement: the server validates and queues the batch, answering
// before it reaches the store (ack ≠ applied ≠ durable — see API.md).
// Backpressure (429 queue_full) is retried automatically up to the
// retry policy's MaxAttempts, honoring the server's retry_after hint;
// re-sending is safe because ingestion replaces on (user, t). Stale
// policies renegotiate exactly like ReportBatch.
func (c *Client) ReportBatchAsync(user int, releases []wire.Release) (AsyncAck, error) {
	return c.ReportBatchAsyncContext(context.Background(), user, releases)
}

// ReportBatchAsyncContext is ReportBatchAsync under an explicit context.
func (c *Client) ReportBatchAsyncContext(ctx context.Context, user int, releases []wire.Release) (AsyncAck, error) {
	ver, err := c.policyVersion(ctx, user)
	if err != nil {
		return AsyncAck{}, err
	}
	var out asyncOrSyncResponse
	req := wire.BatchReportRequest{User: user, PolicyVersion: ver, Releases: releases, Async: true}
	err = c.post(ctx, "/v2/reports?mode=async", req, &out)
	if err != nil && c.adoptStalePolicy(user, err) {
		req.PolicyVersion, _ = c.policyVersion(ctx, user)
		err = c.post(ctx, "/v2/reports?mode=async", req, &out)
	}
	if err != nil {
		return AsyncAck{}, err
	}
	ack := AsyncAck{PolicyVersion: out.PolicyVersion}
	switch {
	case out.Queued != nil:
		ack.Queued, ack.QueueDepth = *out.Queued, out.QueueDepth
	case out.Accepted != nil:
		ack.Queued, ack.SyncFallback = *out.Accepted+out.Replaced, true
	default:
		return AsyncAck{}, errors.New("server client: unrecognized report acknowledgement")
	}
	return ack, nil
}

// binaryBufs pools the encode buffers of the binary report path so a
// client looping over batches reuses one buffer instead of allocating a
// body per send.
var binaryBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

// reportBinary encodes the batch in the binary record format and POSTs
// it, renegotiating once on a stale policy (re-encoding under the new
// version — the frames carry the version, so unlike the JSON path the
// body itself must be rebuilt).
func (c *Client) reportBinary(ctx context.Context, user int, releases []wire.Release, path string, out any) error {
	ver, err := c.policyVersion(ctx, user)
	if err != nil {
		return err
	}
	bp := binaryBufs.Get().(*[]byte)
	defer func() {
		// Oversized encode buffers (a maximum batch is multiple MB) go
		// to the GC rather than staying pinned in the pool.
		if cap(*bp) <= maxPooledBody {
			*bp = (*bp)[:0]
			binaryBufs.Put(bp)
		}
	}()
	*bp = wire.AppendBinaryReport((*bp)[:0], user, ver, releases)
	err = c.doBytes(ctx, http.MethodPost, path, wire.ContentTypeBinary, *bp, out)
	if err != nil && c.adoptStalePolicy(user, err) {
		ver, _ = c.policyVersion(ctx, user)
		*bp = wire.AppendBinaryReport((*bp)[:0], user, ver, releases)
		err = c.doBytes(ctx, http.MethodPost, path, wire.ContentTypeBinary, *bp, out)
	}
	return err
}

// ReportBatchBinary is ReportBatch over the binary record format
// (Content-Type application/x-panda-records): the same synchronous
// semantics and stale-policy renegotiation, but the batch is framed
// client-side into the store's 48-byte record layout, so the server
// ingests it without JSON materialization. Prefer it for hot ingest
// loops; the JSON path remains the default for debuggability.
func (c *Client) ReportBatchBinary(user int, releases []wire.Release) (wire.BatchReportResponse, error) {
	return c.ReportBatchBinaryContext(context.Background(), user, releases)
}

// ReportBatchBinaryContext is ReportBatchBinary under an explicit
// context.
func (c *Client) ReportBatchBinaryContext(ctx context.Context, user int, releases []wire.Release) (wire.BatchReportResponse, error) {
	var out wire.BatchReportResponse
	if err := c.reportBinary(ctx, user, releases, "/v2/reports", &out); err != nil {
		return wire.BatchReportResponse{}, err
	}
	return out, nil
}

// ReportBatchBinaryAsync is ReportBatchAsync over the binary record
// format: early acknowledgement plus the zero-materialization ingest
// path. Backpressure and renegotiation behave exactly like
// ReportBatchAsync.
func (c *Client) ReportBatchBinaryAsync(user int, releases []wire.Release) (AsyncAck, error) {
	return c.ReportBatchBinaryAsyncContext(context.Background(), user, releases)
}

// ReportBatchBinaryAsyncContext is ReportBatchBinaryAsync under an
// explicit context.
func (c *Client) ReportBatchBinaryAsyncContext(ctx context.Context, user int, releases []wire.Release) (AsyncAck, error) {
	var out asyncOrSyncResponse
	if err := c.reportBinary(ctx, user, releases, "/v2/reports?mode=async", &out); err != nil {
		return AsyncAck{}, err
	}
	ack := AsyncAck{PolicyVersion: out.PolicyVersion}
	switch {
	case out.Queued != nil:
		ack.Queued, ack.QueueDepth = *out.Queued, out.QueueDepth
	case out.Accepted != nil:
		ack.Queued, ack.SyncFallback = *out.Accepted+out.Replaced, true
	default:
		return AsyncAck{}, errors.New("server client: unrecognized report acknowledgement")
	}
	return ack, nil
}

// Healthz probes GET /v2/healthz and returns the decoded body for both
// outcomes — a healthy 200 and a failing 503 both carry the same
// response shape, distinguished by its Status field ("ok"/"failing").
// Unlike every other method this one never retries: a probe wants the
// current truth, not an eventually-successful one. The error is non-nil
// only when the probe itself failed (transport error, or a body that is
// not a healthz response).
func (c *Client) Healthz() (wire.HealthzResponse, error) {
	return c.HealthzContext(context.Background())
}

// HealthzContext is Healthz under an explicit context.
func (c *Client) HealthzContext(ctx context.Context) (wire.HealthzResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/healthz", nil)
	if err != nil {
		return wire.HealthzResponse{}, fmt.Errorf("server client: healthz: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return wire.HealthzResponse{}, fmt.Errorf("server client: healthz: %w", err)
	}
	defer resp.Body.Close()
	var out wire.HealthzResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil || out.Status == "" {
		return wire.HealthzResponse{}, fmt.Errorf("server client: healthz: status %d with non-healthz body", resp.StatusCode)
	}
	return out, nil
}

// IngestStats fetches the async ingestion queue's observability
// counters (GET /v2/ingest/stats). Enabled is false on servers running
// without async ingest.
func (c *Client) IngestStats() (wire.IngestStatsResponse, error) {
	return c.IngestStatsContext(context.Background())
}

// IngestStatsContext is IngestStats under an explicit context.
func (c *Client) IngestStatsContext(ctx context.Context) (wire.IngestStatsResponse, error) {
	var out wire.IngestStatsResponse
	if err := c.get(ctx, "/v2/ingest/stats", &out); err != nil {
		return wire.IngestStatsResponse{}, err
	}
	return out, nil
}

// AnalyticsStats fetches the analytics engine's cache counters
// (GET /v2/analytics/stats). Through the cluster router the counters
// are summed across nodes.
func (c *Client) AnalyticsStats() (wire.AnalyticsStatsResponse, error) {
	return c.AnalyticsStatsContext(context.Background())
}

// AnalyticsStatsContext is AnalyticsStats under an explicit context.
func (c *Client) AnalyticsStatsContext(ctx context.Context) (wire.AnalyticsStatsResponse, error) {
	var out wire.AnalyticsStatsResponse
	if err := c.get(ctx, "/v2/analytics/stats", &out); err != nil {
		return wire.AnalyticsStatsResponse{}, err
	}
	return out, nil
}

// Report sends a single released location (a batch of one).
func (c *Client) Report(user, t int, p geo.Point) error {
	return c.ReportContext(context.Background(), user, t, p)
}

// ReportContext is Report under an explicit context.
func (c *Client) ReportContext(ctx context.Context, user, t int, p geo.Point) error {
	_, err := c.ReportBatchContext(ctx, user, []wire.Release{{T: t, X: p.X, Y: p.Y}})
	return err
}

// RecordsPage fetches one page of the user's stored releases. An empty
// cursor starts from the beginning; limit <= 0 uses the server default.
func (c *Client) RecordsPage(user int, cursor string, limit int) (wire.RecordsPage, error) {
	return c.RecordsPageContext(context.Background(), user, cursor, limit)
}

// RecordsPageContext is RecordsPage under an explicit context.
func (c *Client) RecordsPageContext(ctx context.Context, user int, cursor string, limit int) (wire.RecordsPage, error) {
	q := url.Values{}
	q.Set("user", fmt.Sprint(user))
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	var page wire.RecordsPage
	if err := c.get(ctx, "/v2/records?"+q.Encode(), &page); err != nil {
		return wire.RecordsPage{}, err
	}
	return page, nil
}

// Records fetches all of a user's stored releases, following pagination
// cursors until the listing is complete.
func (c *Client) Records(user int) ([]Record, error) {
	return c.RecordsContext(context.Background(), user)
}

// RecordsContext is Records under an explicit context.
func (c *Client) RecordsContext(ctx context.Context, user int) ([]Record, error) {
	var out []Record
	cursor := ""
	for {
		page, err := c.RecordsPageContext(ctx, user, cursor, maxPageLimit)
		if err != nil {
			return nil, err
		}
		for _, wr := range page.Records {
			out = append(out, Record{
				User: wr.User, T: wr.T, Point: geo.Pt(wr.X, wr.Y),
				Cell: wr.Cell, PolicyVersion: wr.PolicyVersion,
			})
		}
		if page.NextCursor == "" {
			return out, nil
		}
		cursor = page.NextCursor
	}
}

// MarkInfected publishes newly infected cells; returns affected users.
// Note the one retry caveat of this endpoint: if a response is lost in
// transit after the server applied the update, the retried call reports
// the (now-empty) second application's changed list.
func (c *Client) MarkInfected(cells []int) ([]int, error) {
	return c.MarkInfectedContext(context.Background(), cells)
}

// MarkInfectedContext is MarkInfected under an explicit context.
func (c *Client) MarkInfectedContext(ctx context.Context, cells []int) ([]int, error) {
	var out wire.InfectedResponse
	if err := c.post(ctx, "/v2/infected", wire.InfectedRequest{Cells: cells}, &out); err != nil {
		return nil, err
	}
	return out.Changed, nil
}

// HealthCode fetches the user's certification over the last `window`
// timesteps anchored at `now` (window <= 0 = all history, now < 0 = the
// server's latest timestep).
func (c *Client) HealthCode(user, window, now int) (HealthCode, error) {
	return c.HealthCodeContext(context.Background(), user, window, now)
}

// HealthCodeContext is HealthCode under an explicit context.
func (c *Client) HealthCodeContext(ctx context.Context, user, window, now int) (HealthCode, error) {
	path := fmt.Sprintf("/v2/healthcode?user=%d", user)
	if window > 0 {
		path += fmt.Sprintf("&window=%d", window)
	}
	if now >= 0 {
		path += fmt.Sprintf("&now=%d", now)
	}
	var out wire.HealthCodeResponse
	if err := c.get(ctx, path, &out); err != nil {
		return "", err
	}
	return HealthCode(out.Code), nil
}

// Density fetches regional release counts at a timestep.
func (c *Client) Density(t, blockRows, blockCols int) ([]int, error) {
	return c.DensityContext(context.Background(), t, blockRows, blockCols)
}

// DensityContext is Density under an explicit context.
func (c *Client) DensityContext(ctx context.Context, t, blockRows, blockCols int) ([]int, error) {
	var out wire.DensityResponse
	path := fmt.Sprintf("/v2/density?t=%d&block_rows=%d&block_cols=%d", t, blockRows, blockCols)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Counts, nil
}

// DensitySeries fetches per-region counts for a timestep range, served
// from the engine's per-timestep cache (GET /v2/density/series).
func (c *Client) DensitySeries(t0, t1, blockRows, blockCols int) ([][]int, error) {
	return c.DensitySeriesContext(context.Background(), t0, t1, blockRows, blockCols)
}

// DensitySeriesContext is DensitySeries under an explicit context.
func (c *Client) DensitySeriesContext(ctx context.Context, t0, t1, blockRows, blockCols int) ([][]int, error) {
	var out wire.DensitySeriesResponse
	path := fmt.Sprintf("/v2/density/series?t0=%d&t1=%d&block_rows=%d&block_cols=%d",
		t0, t1, blockRows, blockCols)
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	return out.Series, nil
}

// Exposure fetches the infected-place exposure series.
func (c *Client) Exposure(t0, t1 int) ([]int, error) {
	return c.ExposureContext(context.Background(), t0, t1)
}

// ExposureContext is Exposure under an explicit context.
func (c *Client) ExposureContext(ctx context.Context, t0, t1 int) ([]int, error) {
	var out wire.ExposureResponse
	if err := c.get(ctx, fmt.Sprintf("/v2/exposure?t0=%d&t1=%d", t0, t1), &out); err != nil {
		return nil, err
	}
	return out.Exposure, nil
}

// Census fetches the population health-code tally.
func (c *Client) Census(window, now int) (map[HealthCode]int, error) {
	return c.CensusContext(context.Background(), window, now)
}

// CensusContext is Census under an explicit context.
func (c *Client) CensusContext(ctx context.Context, window, now int) (map[HealthCode]int, error) {
	path := "/v2/census"
	sep := "?"
	if window > 0 {
		path += fmt.Sprintf("%swindow=%d", sep, window)
		sep = "&"
	}
	if now >= 0 {
		path += fmt.Sprintf("%snow=%d", sep, now)
	}
	var out wire.CensusResponse
	if err := c.get(ctx, path, &out); err != nil {
		return nil, err
	}
	census := make(map[HealthCode]int, len(out.Census))
	for code, n := range out.Census {
		census[HealthCode(code)] = n
	}
	return census, nil
}
