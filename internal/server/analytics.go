package server

import (
	"fmt"
	"sort"
)

// DensitySeries returns, for each timestep in [t0, t1], the released-
// location counts per region — the time dimension of the location-
// monitoring app ("people's movement between different cities along with
// the incidence rate in each city").
func (db *DB) DensitySeries(t0, t1, blockRows, blockCols int) ([][]int, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("server: inverted time range [%d, %d]", t0, t1)
	}
	out := make([][]int, 0, t1-t0+1)
	for t := t0; t <= t1; t++ {
		out = append(out, db.DensityAt(t, blockRows, blockCols))
	}
	return out, nil
}

// InfectedExposureSeries returns, per timestep in [t0, t1], how many users
// reported a location in an infected cell — the incidence proxy the health
// authority watches on released data only.
func (db *DB) InfectedExposureSeries(t0, t1 int, infected []int) ([]int, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("server: inverted time range [%d, %d]", t0, t1)
	}
	inf := make(map[int]bool, len(infected))
	for _, c := range infected {
		inf[c] = true
	}
	out := make([]int, 0, t1-t0+1)
	for t := t0; t <= t1; t++ {
		n := 0
		for _, rec := range db.At(t) {
			if inf[rec.Cell] {
				n++
			}
		}
		out = append(out, n)
	}
	return out, nil
}

// TopRegions returns the k busiest regions at timestep t, as (region,
// count) pairs in descending count (ties by region index).
func (db *DB) TopRegions(t, blockRows, blockCols, k int) [][2]int {
	counts := db.DensityAt(t, blockRows, blockCols)
	pairs := make([][2]int, 0, len(counts))
	for r, c := range counts {
		if c > 0 {
			pairs = append(pairs, [2]int{r, c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][1] != pairs[j][1] {
			return pairs[i][1] > pairs[j][1]
		}
		return pairs[i][0] < pairs[j][0]
	})
	if k > 0 && len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// CodeCensus certifies every known user and tallies the health codes —
// the population-level view of the health-code service. The window is
// anchored at `now` (negative = the database's latest timestep) so every
// user is certified against the same clock.
func (db *DB) CodeCensus(infected []int, window, now int) map[HealthCode]int {
	if now < 0 {
		now = db.MaxT()
	}
	out := map[HealthCode]int{CodeGreen: 0, CodeYellow: 0, CodeRed: 0}
	for _, u := range db.Users() {
		out[db.HealthCodeFor(u, infected, window, now)]++
	}
	return out
}
