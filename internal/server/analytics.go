package server

import "github.com/pglp/panda/internal/server/analytics"

// The aggregate queries live in the analytics package (internal/server/
// analytics), where they are served from epoch-versioned caches over the
// store's timestep index. The DB methods below are thin compatibility
// shims so embedded callers (the examples, the panda facade) keep their
// one-object view of the server.

// DensitySeries returns, for each timestep in [t0, t1], the released-
// location counts per region — the time dimension of the location-
// monitoring app ("people's movement between different cities along with
// the incidence rate in each city"). Each timestep is cached
// individually by the engine.
func (db *DB) DensitySeries(t0, t1, blockRows, blockCols int) ([][]int, error) {
	return db.engine.DensitySeries(t0, t1, blockRows, blockCols)
}

// InfectedExposureSeries returns, per timestep in [t0, t1], how many users
// reported a location in an infected cell — the incidence proxy the health
// authority watches on released data only.
func (db *DB) InfectedExposureSeries(t0, t1 int, infected []int) ([]int, error) {
	return db.engine.InfectedExposureSeries(t0, t1, infected)
}

// TopRegions returns the k busiest regions at timestep t, as (region,
// count) pairs in descending count (ties by region index).
func (db *DB) TopRegions(t, blockRows, blockCols, k int) [][2]int {
	return db.engine.TopRegions(t, blockRows, blockCols, k)
}

// AnalyticsStats returns the engine's cache counters — cumulative
// hits/misses plus the live entry count per cache. The scenario harness
// reads it before and after its query phase to score cache behavior
// under realistic spatial skew.
func (db *DB) AnalyticsStats() analytics.Stats {
	return db.engine.Stats()
}

// CodeCensus certifies every known user and tallies the health codes —
// the population-level view of the health-code service. The window is
// anchored at `now` (negative = the database's latest timestep) so every
// user is certified against the same clock.
func (db *DB) CodeCensus(infected []int, window, now int) map[HealthCode]int {
	return db.engine.CodeCensus(infected, window, now)
}
