// Package wire defines the typed JSON protocol of the PANDA /v2 service
// API: request/response envelopes, the uniform error envelope, machine-
// readable error codes, and the pagination cursor. It is the single
// source of truth for what goes over the network — both the server
// handlers and the client marshal exactly these structs, and it has no
// dependencies on the rest of the system so external tooling can import
// it alone.
package wire
