package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// The binary batch-report format of POST /v2/reports, negotiated with
// Content-Type: application/x-panda-records (JSON stays the default).
//
// A body is a 24-byte batch header followed by count frames of the
// shared storage codec — byte-identical to the frames the WAL stripes
// append, so the server can hand decoded batches from socket to stripe
// without re-encoding:
//
//	offset  size  field
//	0       4     magic "PBR1"
//	4       4     count  (uint32 LE, number of frames; > 0)
//	8       8     user   (int64 LE)
//	16      8     policy_version (int64 LE)
//	24      56×N  frames (8-byte header + 48-byte payload each)
//
// Every frame must carry the header's user and policy_version (one
// batch = one user under one policy, exactly like the JSON body), its
// Cell must be -1 (the server snaps points server-side), and its
// coordinates must be finite. The per-frame CRC32-C makes a truncated
// or bit-flipped body a clean 400 instead of silent corruption.

// ContentTypeBinary negotiates the binary report format.
const ContentTypeBinary = "application/x-panda-records"

// BinaryMagic opens every binary report body.
const BinaryMagic = "PBR1"

// BinaryHeaderSize is the fixed batch header preceding the frames.
const BinaryHeaderSize = 24

// BinaryBodySize returns the exact body length of a batch of n records.
func BinaryBodySize(n int) int { return BinaryHeaderSize + n*storage.FrameSize }

// AppendBinaryReport appends a complete binary report body for one
// user's releases under policyVersion to buf and returns the extended
// buffer. Cell is encoded as -1: snapping is the server's job, exactly
// as in the JSON format.
func AppendBinaryReport(buf []byte, user, policyVersion int, releases []Release) []byte {
	var hdr [BinaryHeaderSize]byte
	copy(hdr[:], BinaryMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(releases)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(user)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(int64(policyVersion)))
	buf = append(buf, hdr[:]...)
	for _, rel := range releases {
		buf = storage.AppendFrame(buf, storage.Record{
			User: user, T: rel.T,
			Point: geo.Pt(rel.X, rel.Y),
			Cell:  -1, PolicyVersion: policyVersion,
		})
	}
	return buf
}

// DecodeBinaryReport parses and verifies a binary report body,
// appending the decoded records to dst (pass a pooled slice to keep the
// hot path allocation-free) and returning the batch's user and policy
// version. maxRecords bounds the declared count. Every integrity
// violation — bad magic, length mismatch, CRC failure, a frame whose
// user/policy_version disagrees with the header, a pre-snapped cell, or
// non-finite coordinates — is an error; the caller maps it to 400.
func DecodeBinaryReport(body []byte, maxRecords int, dst []storage.Record) (user, policyVersion int, recs []storage.Record, err error) {
	if len(body) < BinaryHeaderSize {
		return 0, 0, dst, fmt.Errorf("wire: binary report: body of %d bytes is shorter than the %d-byte header", len(body), BinaryHeaderSize)
	}
	if string(body[:4]) != BinaryMagic {
		return 0, 0, dst, fmt.Errorf("wire: binary report: bad magic %q (want %q)", body[:4], BinaryMagic)
	}
	count := int(binary.LittleEndian.Uint32(body[4:]))
	if count <= 0 {
		return 0, 0, dst, errors.New("wire: binary report: empty batch: at least one release required")
	}
	if count > maxRecords {
		return 0, 0, dst, fmt.Errorf("wire: binary report: batch of %d releases exceeds the limit of %d", count, maxRecords)
	}
	if want := BinaryBodySize(count); len(body) != want {
		return 0, 0, dst, fmt.Errorf("wire: binary report: body is %d bytes, want exactly %d for %d releases", len(body), want, count)
	}
	user = int(int64(binary.LittleEndian.Uint64(body[8:])))
	policyVersion = int(int64(binary.LittleEndian.Uint64(body[16:])))
	off := BinaryHeaderSize
	for i := 0; i < count; i++ {
		rec, ok := storage.DecodeFrame(body[off : off+storage.FrameSize])
		if !ok {
			return 0, 0, dst, fmt.Errorf("wire: binary report: frame %d failed its CRC check", i)
		}
		if rec.User != user {
			return 0, 0, dst, fmt.Errorf("wire: binary report: frame %d user %d disagrees with the batch header's %d", i, rec.User, user)
		}
		if rec.PolicyVersion != policyVersion {
			return 0, 0, dst, fmt.Errorf("wire: binary report: frame %d policy version %d disagrees with the batch header's %d", i, rec.PolicyVersion, policyVersion)
		}
		if rec.Cell != -1 {
			return 0, 0, dst, fmt.Errorf("wire: binary report: frame %d carries cell %d; cells are assigned server-side (encode -1)", i, rec.Cell)
		}
		if !finite(rec.Point.X) || !finite(rec.Point.Y) {
			return 0, 0, dst, fmt.Errorf("wire: binary report: frame %d has a non-finite coordinate", i)
		}
		dst = append(dst, rec)
		off += storage.FrameSize
	}
	return user, policyVersion, dst, nil
}

// PeekBinaryReportUser extracts the routing key (the batch header's
// user) without decoding the frames — the cluster router's peek for
// verbatim binary passthrough.
func PeekBinaryReportUser(body []byte) (int, error) {
	if len(body) < BinaryHeaderSize {
		return 0, fmt.Errorf("wire: binary report: body of %d bytes is shorter than the %d-byte header", len(body), BinaryHeaderSize)
	}
	if string(body[:4]) != BinaryMagic {
		return 0, fmt.Errorf("wire: binary report: bad magic %q (want %q)", body[:4], BinaryMagic)
	}
	return int(int64(binary.LittleEndian.Uint64(body[8:]))), nil
}

// finite reports whether f is neither NaN nor an infinity.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
