package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// TestBinaryReportGolden pins the full body layout: the 24-byte header
// plus frames that are byte-identical to the WAL codec's output for the
// same records. The wire format and the WAL on-disk format are one
// format — this test is what makes divergence impossible to miss.
func TestBinaryReportGolden(t *testing.T) {
	releases := []Release{{T: 0, X: 1.5, Y: -2.25}, {T: 7, X: 0, Y: 3.125}}
	body := AppendBinaryReport(nil, -42, 3, releases)

	var want []byte
	want = append(want, "PBR1"...)
	var w4 [4]byte
	binary.LittleEndian.PutUint32(w4[:], 2)
	want = append(want, w4[:]...)
	var w8 [8]byte
	negUser := int64(-42)
	binary.LittleEndian.PutUint64(w8[:], uint64(negUser))
	want = append(want, w8[:]...)
	binary.LittleEndian.PutUint64(w8[:], 3)
	want = append(want, w8[:]...)
	for _, rel := range releases {
		want = storage.AppendFrame(want, storage.Record{
			User: -42, T: rel.T, Point: geo.Pt(rel.X, rel.Y), Cell: -1, PolicyVersion: 3,
		})
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("binary body diverged from the pinned layout:\n got %x\nwant %x", body, want)
	}
	if len(body) != BinaryBodySize(2) {
		t.Fatalf("body is %d bytes, want %d", len(body), BinaryBodySize(2))
	}

	user, ver, recs, err := DecodeBinaryReport(body, 100, nil)
	if err != nil {
		t.Fatalf("decoding a well-formed body: %v", err)
	}
	if user != -42 || ver != 3 || len(recs) != 2 {
		t.Fatalf("decoded user=%d ver=%d n=%d, want -42, 3, 2", user, ver, len(recs))
	}
	for i, rel := range releases {
		want := storage.Record{User: -42, T: rel.T, Point: geo.Pt(rel.X, rel.Y), Cell: -1, PolicyVersion: 3}
		if recs[i] != want {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want)
		}
	}
}

// corrupt returns a copy of body with fn applied.
func corrupt(body []byte, fn func([]byte)) []byte {
	c := append([]byte(nil), body...)
	fn(c)
	return c
}

func TestBinaryReportRejects(t *testing.T) {
	good := AppendBinaryReport(nil, 9, 1, []Release{{T: 1, X: 2, Y: 3}})

	cases := []struct {
		name string
		body []byte
		want string // substring of the error
	}{
		{"truncated header", good[:10], "shorter than"},
		{"bad magic", corrupt(good, func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"zero count", corrupt(good, func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 0) }), "empty batch"},
		{"count over limit", corrupt(good, func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 101) }), "exceeds the limit"},
		{"length mismatch", good[:len(good)-8], "want exactly"},
		{"flipped payload bit", corrupt(good, func(b []byte) { b[BinaryHeaderSize+20] ^= 1 }), "CRC"},
		{"frame user mismatch", corrupt(good, func(b []byte) {
			// Re-frame record 0 with a different user so its CRC is valid.
			frame := storage.AppendFrame(nil, storage.Record{User: 8, T: 1, Point: geo.Pt(2, 3), Cell: -1, PolicyVersion: 1})
			copy(b[BinaryHeaderSize:], frame)
		}), "disagrees with the batch header"},
		{"frame version mismatch", corrupt(good, func(b []byte) {
			frame := storage.AppendFrame(nil, storage.Record{User: 9, T: 1, Point: geo.Pt(2, 3), Cell: -1, PolicyVersion: 2})
			copy(b[BinaryHeaderSize:], frame)
		}), "policy version"},
		{"pre-snapped cell", corrupt(good, func(b []byte) {
			frame := storage.AppendFrame(nil, storage.Record{User: 9, T: 1, Point: geo.Pt(2, 3), Cell: 5, PolicyVersion: 1})
			copy(b[BinaryHeaderSize:], frame)
		}), "cells are assigned server-side"},
		{"NaN coordinate", corrupt(good, func(b []byte) {
			frame := storage.AppendFrame(nil, storage.Record{User: 9, T: 1, Point: geo.Pt(math.NaN(), 3), Cell: -1, PolicyVersion: 1})
			copy(b[BinaryHeaderSize:], frame)
		}), "non-finite"},
		{"Inf coordinate", corrupt(good, func(b []byte) {
			frame := storage.AppendFrame(nil, storage.Record{User: 9, T: 1, Point: geo.Pt(2, math.Inf(-1)), Cell: -1, PolicyVersion: 1})
			copy(b[BinaryHeaderSize:], frame)
		}), "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeBinaryReport(tc.body, 100, nil)
			if err == nil {
				t.Fatalf("body accepted, want an error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPeekBinaryReportUser(t *testing.T) {
	body := AppendBinaryReport(nil, 1234567, 1, []Release{{T: 0, X: 1, Y: 1}})
	user, err := PeekBinaryReportUser(body)
	if err != nil || user != 1234567 {
		t.Fatalf("peek = %d, %v; want 1234567, nil", user, err)
	}
	if _, err := PeekBinaryReportUser(body[:8]); err == nil {
		t.Fatal("short body peeked without error")
	}
	if _, err := PeekBinaryReportUser([]byte("XXXX0123456789abcdef0123")); err == nil {
		t.Fatal("bad magic peeked without error")
	}
}
