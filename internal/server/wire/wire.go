// Package wire defines the typed JSON protocol of the PANDA /v2 service
// API: request/response envelopes, the uniform error envelope, machine-
// readable error codes, and the pagination cursor. It is the single
// source of truth for what goes over the network — both the server
// handlers and the client marshal exactly these structs, and it has no
// dependencies on the rest of the system so external tooling can import
// it alone.
package wire

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Machine-readable error codes carried in the uniform error envelope.
const (
	CodeBadRequest  = "bad_request"      // malformed body or out-of-range parameter
	CodeConsent     = "consent_required" // user has rejected the current policy (403)
	CodeStalePolicy = "stale_policy"     // client's policy version is outdated (409)
	CodeInternal    = "internal"         // server-side failure (500)
)

// Error is the uniform /v2 error envelope. Every non-2xx response body
// decodes into it. On CodeStalePolicy the server includes the user's
// current policy inline so the client can re-sync without a second round
// trip (the dynamic-policy renegotiation of the contact-tracing
// protocol).
type Error struct {
	Error  string  `json:"error"`
	Code   string  `json:"code"`
	Policy *Policy `json:"policy,omitempty"`
}

// Policy is the wire form of a user's location-privacy policy. The graph
// is included verbatim: publishing policy graphs is part of the
// transparency story.
type Policy struct {
	User    int             `json:"user"`
	Epsilon float64         `json:"epsilon"`
	Version int             `json:"version"`
	Graph   json.RawMessage `json:"graph,omitempty"`
}

// Release is one perturbed location inside a batch report.
type Release struct {
	T int     `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BatchReportRequest is the body of POST /v2/reports: many releases from
// one user under one policy version. PolicyVersion is required (≥ 1);
// unlike /v1, a zero version is rejected rather than skipping the
// staleness check.
type BatchReportRequest struct {
	User          int       `json:"user"`
	PolicyVersion int       `json:"policy_version"`
	Releases      []Release `json:"releases"`
}

// BatchReportResponse summarizes a batch ingest: how many releases were
// new, how many replaced an existing (user, t) record (the re-send
// path), and the policy version they were accepted under.
type BatchReportResponse struct {
	Accepted      int `json:"accepted"`
	Replaced      int `json:"replaced"`
	PolicyVersion int `json:"policy_version"`
}

// Record is the wire form of one stored release.
type Record struct {
	User          int     `json:"user"`
	T             int     `json:"t"`
	X             float64 `json:"x"`
	Y             float64 `json:"y"`
	Cell          int     `json:"cell"`
	PolicyVersion int     `json:"policy_version"`
}

// RecordsPage is one page of GET /v2/records. NextCursor is set when
// more records remain; pass it back verbatim to resume. An empty
// NextCursor means the listing is complete.
type RecordsPage struct {
	Records    []Record `json:"records"`
	NextCursor string   `json:"next_cursor,omitempty"`
}

// InfectedRequest is the body of POST /v2/infected.
type InfectedRequest struct {
	Cells []int `json:"cells"`
}

// InfectedResponse lists the users whose policies changed.
type InfectedResponse struct {
	Changed []int `json:"changed"`
}

// HealthCodeResponse certifies one user. Now echoes the timestep the
// window was anchored at (resolved server-side when the request omitted
// it).
type HealthCodeResponse struct {
	User   int    `json:"user"`
	Code   string `json:"code"`
	Window int    `json:"window"`
	Now    int    `json:"now"`
}

// DensityResponse carries per-region release counts at one timestep.
type DensityResponse struct {
	T      int   `json:"t"`
	Counts []int `json:"counts"`
}

// DensitySeriesResponse carries per-region counts for each timestep in
// [t0, t1].
type DensitySeriesResponse struct {
	T0     int     `json:"t0"`
	T1     int     `json:"t1"`
	Series [][]int `json:"series"`
}

// ExposureResponse carries the infected-place exposure series.
type ExposureResponse struct {
	T0       int   `json:"t0"`
	T1       int   `json:"t1"`
	Exposure []int `json:"exposure"`
}

// CensusResponse tallies health codes across all known users.
type CensusResponse struct {
	Census map[string]int `json:"census"`
	Window int            `json:"window"`
	Now    int            `json:"now"`
}

// cursorPrefix versions the cursor encoding so a future format change
// can be detected rather than misparsed.
const cursorPrefix = "t:"

// EncodeCursor encodes the last-seen timestep into an opaque pagination
// cursor.
func EncodeCursor(lastT int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(lastT)))
}

// DecodeCursor decodes a cursor produced by EncodeCursor back into the
// last-seen timestep.
func DecodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("wire: malformed cursor: %v", err)
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("wire: unknown cursor format")
	}
	t, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("wire: malformed cursor: %v", err)
	}
	return t, nil
}
