package wire

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Machine-readable error codes carried in the uniform error envelope.
const (
	CodeBadRequest  = "bad_request"      // malformed body or out-of-range parameter
	CodeConsent     = "consent_required" // user has rejected the current policy (403)
	CodeStalePolicy = "stale_policy"     // client's policy version is outdated (409)
	CodeInternal    = "internal"         // server-side failure (500)
	CodeQueueFull   = "queue_full"       // async ingest queue at capacity, retry later (429)
	CodeUnavailable = "unavailable"      // server is shutting down (503)
	// CodeNodeDown is returned by the cluster router when the node owning
	// the requested user — or any node of a scatter-gather query — is
	// unreachable or failing its health probe. The envelope's Node field
	// names the dead node and the Retry-After header carries the probe
	// interval, so clients back off politely instead of hammering a dead
	// partition. (503)
	CodeNodeDown = "node_unavailable"
	// CodeUnsupportedMedia rejects a POST /v2/reports whose Content-Type
	// is neither JSON nor the binary record format (415).
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeUnknown is the client-side sentinel for a response that did
	// not carry a code: a /v1 envelope (those predate codes and are
	// frozen without them) or a non-envelope body from an intermediary.
	// Servers never send it; clients matching on codes can treat it as
	// "inspect the HTTP status instead".
	CodeUnknown = "unknown"
)

// Error is the uniform /v2 error envelope. Every non-2xx response body
// decodes into it. On CodeStalePolicy the server includes the user's
// current policy inline so the client can re-sync without a second round
// trip (the dynamic-policy renegotiation of the contact-tracing
// protocol). On CodeQueueFull the server includes RetryAfterMS, its
// backpressure hint: how long the client should wait before re-sending
// the same batch (safe — ingestion replaces on (user, t)).
type Error struct {
	Error        string  `json:"error"`
	Code         string  `json:"code"`
	Policy       *Policy `json:"policy,omitempty"`
	RetryAfterMS int     `json:"retry_after_ms,omitempty"`
	// Node names the cluster node behind a CodeNodeDown routing error,
	// so automation can act on the failing node without parsing the
	// human-readable message.
	Node string `json:"node,omitempty"`
}

// Policy is the wire form of a user's location-privacy policy. The graph
// is included verbatim: publishing policy graphs is part of the
// transparency story.
type Policy struct {
	User    int             `json:"user"`
	Epsilon float64         `json:"epsilon"`
	Version int             `json:"version"`
	Graph   json.RawMessage `json:"graph,omitempty"`
}

// Release is one perturbed location inside a batch report.
type Release struct {
	T int     `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BatchReportRequest is the body of POST /v2/reports: many releases from
// one user under one policy version. PolicyVersion is required (≥ 1);
// unlike /v1, a zero version is rejected rather than skipping the
// staleness check. Async, equivalent to the ?mode=async query parameter,
// requests early acknowledgement: the server validates and enqueues the
// batch, answering 202 Accepted before the records reach the store.
type BatchReportRequest struct {
	User          int       `json:"user"`
	PolicyVersion int       `json:"policy_version"`
	Releases      []Release `json:"releases"`
	Async         bool      `json:"async,omitempty"`
}

// BatchReportResponse summarizes a synchronous batch ingest: how many
// releases were new, how many replaced an existing (user, t) record (the
// re-send path), and the policy version they were accepted under.
type BatchReportResponse struct {
	Accepted      int `json:"accepted"`
	Replaced      int `json:"replaced"`
	PolicyVersion int `json:"policy_version"`
}

// AsyncReportResponse is the 202 Accepted body of an async batch report:
// the batch passed validation and was queued, not yet applied (and, on a
// durable store, not yet persisted — ack ≠ durable). QueueDepth is the
// number of records pending behind this acknowledgement, a load signal
// clients can use to self-throttle before hitting 429s.
type AsyncReportResponse struct {
	Queued        int `json:"queued"`
	QueueDepth    int `json:"queue_depth"`
	PolicyVersion int `json:"policy_version"`
}

// IngestStatsResponse is the body of GET /v2/ingest/stats — the
// observability surface of the async ingestion queue. With async ingest
// disabled, Enabled is false and every other field is zero.
type IngestStatsResponse struct {
	Enabled  bool `json:"enabled"`
	Depth    int  `json:"depth"`    // records enqueued, not yet applied
	Capacity int  `json:"capacity"` // queue bound in records
	Workers  int  `json:"workers"`  // background drain workers
	// UserCap is the per-user pending budget (fairness), 0 when
	// disabled. Through the cluster router it is the largest per-node
	// budget (budgets are enforced per node, not cluster-wide).
	UserCap  int    `json:"user_cap"`
	Enqueued uint64 `json:"enqueued"` // records accepted (202) since start
	Drained  uint64 `json:"drained"`  // records applied to the store
	Dropped  uint64 `json:"dropped"`  // records lost to a forced shutdown
	Rejected uint64 `json:"rejected"` // records refused with 429
	// Throttled is the subset of Rejected refused by the per-user
	// fairness budget rather than global queue pressure.
	Throttled uint64 `json:"throttled"`
	// LagMS is the enqueue→apply latency of the most recently applied
	// batch in milliseconds — how far the drain runs behind the acks.
	LagMS float64 `json:"lag_ms"`
}

// AnalyticsStatsResponse is the body of GET /v2/analytics/stats — the
// observability surface of the analytics engine's epoch-versioned
// caches. Hits and Misses are cumulative since server start; the entry
// counts are current cache sizes. Through the cluster router every
// field is the sum across nodes (each node caches independently, so the
// fleet-wide hit rate is the ratio of the summed counters).
type AnalyticsStatsResponse struct {
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	DensityEntries  int    `json:"density_entries"`
	ExposureEntries int    `json:"exposure_entries"`
	CensusEntries   int    `json:"census_entries"`
}

// Record is the wire form of one stored release.
type Record struct {
	User          int     `json:"user"`
	T             int     `json:"t"`
	X             float64 `json:"x"`
	Y             float64 `json:"y"`
	Cell          int     `json:"cell"`
	PolicyVersion int     `json:"policy_version"`
}

// RecordsPage is one page of GET /v2/records. NextCursor is set when
// more records remain; pass it back verbatim to resume. An empty
// NextCursor means the listing is complete.
type RecordsPage struct {
	Records    []Record `json:"records"`
	NextCursor string   `json:"next_cursor,omitempty"`
}

// InfectedRequest is the body of POST /v2/infected.
type InfectedRequest struct {
	Cells []int `json:"cells"`
}

// InfectedResponse lists the users whose policies changed.
type InfectedResponse struct {
	Changed []int `json:"changed"`
}

// HealthCodeResponse certifies one user. Now echoes the timestep the
// window was anchored at (resolved server-side when the request omitted
// it).
type HealthCodeResponse struct {
	User   int    `json:"user"`
	Code   string `json:"code"`
	Window int    `json:"window"`
	Now    int    `json:"now"`
}

// DensityResponse carries per-region release counts at one timestep.
//
// Gen is the store's write generation for timestep t, read before the
// counts were computed — the cache-consistency token of the epoch/Gen
// contract (ARCHITECTURE.md). On a single node it is Gen(t); through
// the cluster router it is the sum of the per-node generations, which
// stays monotone exactly the way the sharded store's Gen sums per-shard
// counters. A repeated query whose Gen did not change saw identical
// data.
type DensityResponse struct {
	T      int    `json:"t"`
	Counts []int  `json:"counts"`
	Gen    uint64 `json:"gen"`
}

// DensitySeriesResponse carries per-region counts for each timestep in
// [t0, t1]. Epoch is the store's global write generation read before
// the series was computed (summed across nodes by the cluster router);
// see DensityResponse.Gen for the consistency semantics.
type DensitySeriesResponse struct {
	T0     int     `json:"t0"`
	T1     int     `json:"t1"`
	Series [][]int `json:"series"`
	Epoch  uint64  `json:"epoch"`
}

// ExposureResponse carries the infected-place exposure series. Epoch is
// the store's global write generation read before the series was
// computed (summed across nodes by the cluster router).
type ExposureResponse struct {
	T0       int    `json:"t0"`
	T1       int    `json:"t1"`
	Exposure []int  `json:"exposure"`
	Epoch    uint64 `json:"epoch"`
}

// CensusResponse tallies health codes across all known users. Epoch is
// the store's global write generation read before the tally was
// computed (summed across nodes by the cluster router) — the same
// counter the census cache itself is pinned to.
type CensusResponse struct {
	Census map[string]int `json:"census"`
	Window int            `json:"window"`
	Now    int            `json:"now"`
	Epoch  uint64         `json:"epoch"`
}

// HealthzResponse is the body of GET /v2/healthz — the uniform liveness
// probe of one server process. Status is "ok" or "failing"; a failing
// server also answers HTTP 503 so load balancers and the cluster
// router's probe can act on the status code alone. StoreError surfaces
// a durable store's append failure (the fail-stop condition);
// CompactError surfaces a non-fatal background-compaction failure (the
// log keeps growing until it recovers). Both are empty on memory-backed
// servers.
type HealthzResponse struct {
	Status       string `json:"status"`
	Records      int    `json:"records"`
	MaxT         int    `json:"max_t"`
	Epoch        uint64 `json:"epoch"`
	StoreError   string `json:"store_error,omitempty"`
	CompactError string `json:"compact_error,omitempty"`
}

// NodeStatus is one node's entry in the cluster router's healthz
// response: the ring identity plus the last probe's outcome.
type NodeStatus struct {
	Name       string `json:"name"`
	URL        string `json:"url"`
	Partitions []int  `json:"partitions"`
	Up         bool   `json:"up"`
	Error      string `json:"error,omitempty"`
	Records    int    `json:"records"`
	MaxT       int    `json:"max_t"`
	Epoch      uint64 `json:"epoch"`
}

// ClusterHealthzResponse is the body of GET /v2/healthz on the cluster
// router: per-node probe results plus the composite cluster epoch (the
// sum of reachable nodes' store epochs — monotone while the fleet is
// healthy, advisory while any node is down). Status is "ok" when every
// node is up, "degraded" otherwise (with HTTP 503).
type ClusterHealthzResponse struct {
	Status       string       `json:"status"`
	Partitions   int          `json:"partitions"`
	ClusterEpoch uint64       `json:"cluster_epoch"`
	Nodes        []NodeStatus `json:"nodes"`
}

// cursorPrefix versions the cursor encoding so a future format change
// can be detected rather than misparsed.
const cursorPrefix = "t:"

// EncodeCursor encodes the last-seen timestep into an opaque pagination
// cursor.
func EncodeCursor(lastT int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(lastT)))
}

// DecodeCursor decodes a cursor produced by EncodeCursor back into the
// last-seen timestep.
func DecodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("wire: malformed cursor: %v", err)
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, errors.New("wire: unknown cursor format")
	}
	t, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("wire: malformed cursor: %v", err)
	}
	return t, nil
}
