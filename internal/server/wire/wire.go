package wire

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Machine-readable error codes carried in the uniform error envelope.
const (
	CodeBadRequest  = "bad_request"      // malformed body or out-of-range parameter
	CodeConsent     = "consent_required" // user has rejected the current policy (403)
	CodeStalePolicy = "stale_policy"     // client's policy version is outdated (409)
	CodeInternal    = "internal"         // server-side failure (500)
	CodeQueueFull   = "queue_full"       // async ingest queue at capacity, retry later (429)
	CodeUnavailable = "unavailable"      // server is shutting down (503)
)

// Error is the uniform /v2 error envelope. Every non-2xx response body
// decodes into it. On CodeStalePolicy the server includes the user's
// current policy inline so the client can re-sync without a second round
// trip (the dynamic-policy renegotiation of the contact-tracing
// protocol). On CodeQueueFull the server includes RetryAfterMS, its
// backpressure hint: how long the client should wait before re-sending
// the same batch (safe — ingestion replaces on (user, t)).
type Error struct {
	Error        string  `json:"error"`
	Code         string  `json:"code"`
	Policy       *Policy `json:"policy,omitempty"`
	RetryAfterMS int     `json:"retry_after_ms,omitempty"`
}

// Policy is the wire form of a user's location-privacy policy. The graph
// is included verbatim: publishing policy graphs is part of the
// transparency story.
type Policy struct {
	User    int             `json:"user"`
	Epsilon float64         `json:"epsilon"`
	Version int             `json:"version"`
	Graph   json.RawMessage `json:"graph,omitempty"`
}

// Release is one perturbed location inside a batch report.
type Release struct {
	T int     `json:"t"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// BatchReportRequest is the body of POST /v2/reports: many releases from
// one user under one policy version. PolicyVersion is required (≥ 1);
// unlike /v1, a zero version is rejected rather than skipping the
// staleness check. Async, equivalent to the ?mode=async query parameter,
// requests early acknowledgement: the server validates and enqueues the
// batch, answering 202 Accepted before the records reach the store.
type BatchReportRequest struct {
	User          int       `json:"user"`
	PolicyVersion int       `json:"policy_version"`
	Releases      []Release `json:"releases"`
	Async         bool      `json:"async,omitempty"`
}

// BatchReportResponse summarizes a synchronous batch ingest: how many
// releases were new, how many replaced an existing (user, t) record (the
// re-send path), and the policy version they were accepted under.
type BatchReportResponse struct {
	Accepted      int `json:"accepted"`
	Replaced      int `json:"replaced"`
	PolicyVersion int `json:"policy_version"`
}

// AsyncReportResponse is the 202 Accepted body of an async batch report:
// the batch passed validation and was queued, not yet applied (and, on a
// durable store, not yet persisted — ack ≠ durable). QueueDepth is the
// number of records pending behind this acknowledgement, a load signal
// clients can use to self-throttle before hitting 429s.
type AsyncReportResponse struct {
	Queued        int `json:"queued"`
	QueueDepth    int `json:"queue_depth"`
	PolicyVersion int `json:"policy_version"`
}

// IngestStatsResponse is the body of GET /v2/ingest/stats — the
// observability surface of the async ingestion queue. With async ingest
// disabled, Enabled is false and every other field is zero.
type IngestStatsResponse struct {
	Enabled  bool   `json:"enabled"`
	Depth    int    `json:"depth"`    // records enqueued, not yet applied
	Capacity int    `json:"capacity"` // queue bound in records
	Workers  int    `json:"workers"`  // background drain workers
	Enqueued uint64 `json:"enqueued"` // records accepted (202) since start
	Drained  uint64 `json:"drained"`  // records applied to the store
	Dropped  uint64 `json:"dropped"`  // records lost to a forced shutdown
	Rejected uint64 `json:"rejected"` // records refused with 429
	// LagMS is the enqueue→apply latency of the most recently applied
	// batch in milliseconds — how far the drain runs behind the acks.
	LagMS float64 `json:"lag_ms"`
}

// Record is the wire form of one stored release.
type Record struct {
	User          int     `json:"user"`
	T             int     `json:"t"`
	X             float64 `json:"x"`
	Y             float64 `json:"y"`
	Cell          int     `json:"cell"`
	PolicyVersion int     `json:"policy_version"`
}

// RecordsPage is one page of GET /v2/records. NextCursor is set when
// more records remain; pass it back verbatim to resume. An empty
// NextCursor means the listing is complete.
type RecordsPage struct {
	Records    []Record `json:"records"`
	NextCursor string   `json:"next_cursor,omitempty"`
}

// InfectedRequest is the body of POST /v2/infected.
type InfectedRequest struct {
	Cells []int `json:"cells"`
}

// InfectedResponse lists the users whose policies changed.
type InfectedResponse struct {
	Changed []int `json:"changed"`
}

// HealthCodeResponse certifies one user. Now echoes the timestep the
// window was anchored at (resolved server-side when the request omitted
// it).
type HealthCodeResponse struct {
	User   int    `json:"user"`
	Code   string `json:"code"`
	Window int    `json:"window"`
	Now    int    `json:"now"`
}

// DensityResponse carries per-region release counts at one timestep.
type DensityResponse struct {
	T      int   `json:"t"`
	Counts []int `json:"counts"`
}

// DensitySeriesResponse carries per-region counts for each timestep in
// [t0, t1].
type DensitySeriesResponse struct {
	T0     int     `json:"t0"`
	T1     int     `json:"t1"`
	Series [][]int `json:"series"`
}

// ExposureResponse carries the infected-place exposure series.
type ExposureResponse struct {
	T0       int   `json:"t0"`
	T1       int   `json:"t1"`
	Exposure []int `json:"exposure"`
}

// CensusResponse tallies health codes across all known users.
type CensusResponse struct {
	Census map[string]int `json:"census"`
	Window int            `json:"window"`
	Now    int            `json:"now"`
}

// cursorPrefix versions the cursor encoding so a future format change
// can be detected rather than misparsed.
const cursorPrefix = "t:"

// EncodeCursor encodes the last-seen timestep into an opaque pagination
// cursor.
func EncodeCursor(lastT int) string {
	return base64.RawURLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(lastT)))
}

// DecodeCursor decodes a cursor produced by EncodeCursor back into the
// last-seen timestep.
func DecodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("wire: malformed cursor: %v", err)
	}
	rest, ok := strings.CutPrefix(string(raw), cursorPrefix)
	if !ok {
		return 0, fmt.Errorf("wire: unknown cursor format")
	}
	t, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("wire: malformed cursor: %v", err)
	}
	return t, nil
}
