package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/pglp/panda/internal/policygraph"
	"github.com/pglp/panda/internal/server/wire"
)

// postV2 POSTs a raw body and decodes the response as a wire error
// envelope (zero-valued for 2xx).
func postV2(t *testing.T, base, path, body string) (int, wire.Error) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e wire.Error
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e
}

func getV2(t *testing.T, base, path string) (int, wire.Error) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e wire.Error
	_ = json.NewDecoder(resp.Body).Decode(&e)
	return resp.StatusCode, e
}

// TestV2ErrorEnvelopes drives every error path of the /v2 surface and
// checks the uniform {error, code} envelope.
func TestV2ErrorEnvelopes(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()

	// A non-consenting user for the 403 path.
	srv.mgr.Get(7)
	srv.mgr.Consent(7, false)

	p := grid.Center(1)
	report := func(user, ver int, t0 int) string {
		return fmt.Sprintf(`{"user":%d,"policy_version":%d,"releases":[{"t":%d,"x":%v,"y":%v}]}`,
			user, ver, t0, p.X, p.Y)
	}

	posts := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"bad json", "/v2/reports", "{nope", http.StatusBadRequest, wire.CodeBadRequest},
		{"empty batch", "/v2/reports", `{"user":0,"policy_version":1,"releases":[]}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"missing version", "/v2/reports", `{"user":0,"releases":[{"t":0,"x":0,"y":0}]}`, http.StatusBadRequest, wire.CodeBadRequest},
		{"negative version", "/v2/reports", report(0, -2, 0), http.StatusBadRequest, wire.CodeBadRequest},
		{"stale version", "/v2/reports", report(0, 99, 0), http.StatusConflict, wire.CodeStalePolicy},
		{"no consent", "/v2/reports", report(7, 1, 0), http.StatusForbidden, wire.CodeConsent},
		{"negative timestep", "/v2/reports", report(0, 1, -4), http.StatusBadRequest, wire.CodeBadRequest},
		{"bad infected json", "/v2/infected", "[", http.StatusBadRequest, wire.CodeBadRequest},
	}
	for _, tc := range posts {
		status, e := postV2(t, base, tc.path, tc.body)
		if status != tc.status || e.Code != tc.code {
			t.Errorf("%s: status=%d code=%q (%s), want %d %q", tc.name, status, e.Code, e.Error, tc.status, tc.code)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}

	gets := []struct{ name, path string }{
		{"records missing user", "/v2/records"},
		{"records bad cursor", "/v2/records?user=0&cursor=%25%25"},
		{"records zero limit", "/v2/records?user=0&limit=0"},
		{"records oversized limit", fmt.Sprintf("/v2/records?user=0&limit=%d", maxPageLimit+1)},
		{"density negative t", "/v2/density?t=-1&block_rows=2&block_cols=2"},
		{"density zero block", "/v2/density?t=0&block_rows=2&block_cols=0"},
		{"series inverted", "/v2/density_series?t0=2&t1=1&block_rows=2&block_cols=2"},
		{"exposure inverted", "/v2/exposure?t0=2&t1=1"},
		{"healthcode missing user", "/v2/healthcode"},
		{"healthcode zero window", "/v2/healthcode?user=0&window=0"},
		{"healthcode negative now", "/v2/healthcode?user=0&now=-1"},
		{"census negative window", "/v2/census?window=-1"},
		{"policy bad user", "/v2/policy?user=xyz"},
	}
	for _, tc := range gets {
		status, e := getV2(t, base, tc.path)
		if status != http.StatusBadRequest || e.Code != wire.CodeBadRequest {
			t.Errorf("%s: status=%d code=%q (%s), want 400 %q", tc.name, status, e.Code, e.Error, wire.CodeBadRequest)
		}
	}
}

// TestV2StalePolicyCarriesNewPolicy checks the renegotiation envelope: a
// stale report gets a 409 whose body already contains the user's current
// policy, graph included, so no follow-up round trip is needed.
func TestV2StalePolicyCarriesNewPolicy(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	if _, err := client.Policy(0); err != nil {
		t.Fatal(err)
	}
	if _, err := client.MarkInfected([]int{5}); err != nil { // bump to version 2
		t.Fatal(err)
	}
	p := grid.Center(1)
	body := fmt.Sprintf(`{"user":0,"policy_version":1,"releases":[{"t":0,"x":%v,"y":%v}]}`, p.X, p.Y)
	status, e := postV2(t, base, "/v2/reports", body)
	if status != http.StatusConflict || e.Code != wire.CodeStalePolicy {
		t.Fatalf("status=%d code=%q, want 409 stale_policy", status, e.Code)
	}
	if e.Policy == nil {
		t.Fatal("stale_policy envelope missing inline policy")
	}
	if e.Policy.Version != 2 || e.Policy.User != 0 {
		t.Errorf("inline policy = %+v, want user 0 version 2", e.Policy)
	}
	var g policygraph.Graph
	if err := json.Unmarshal(e.Policy.Graph, &g); err != nil {
		t.Fatalf("inline policy graph: %v", err)
	}
	if g.Degree(5) != 0 {
		t.Error("infected cell should be isolated in the renegotiated policy")
	}
}

// TestV2BatchReportAndPagination round-trips a batch through the store
// and walks the cursor-paginated listing.
func TestV2BatchReportAndPagination(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()

	const n = 25
	releases := make([]wire.Release, 0, n)
	for i := 0; i < n; i++ {
		p := grid.Center(i % grid.NumCells())
		releases = append(releases, wire.Release{T: i, X: p.X, Y: p.Y})
	}
	resp, err := client.ReportBatch(3, releases)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != n || resp.Replaced != 0 || resp.PolicyVersion != 1 {
		t.Errorf("batch response = %+v", resp)
	}
	// Re-sending the same batch replaces everything.
	resp, err = client.ReportBatch(3, releases)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Replaced != n {
		t.Errorf("re-send response = %+v, want all replaced", resp)
	}

	// Page through with limit 10: 10 + 10 + 5.
	var got []wire.Record
	cursor := ""
	pages := 0
	for {
		page, err := client.RecordsPage(3, cursor, 10)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		got = append(got, page.Records...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(got) != n {
		t.Fatalf("pages=%d records=%d, want 3 pages of %d total", pages, len(got), n)
	}
	for i, rec := range got {
		if rec.T != i {
			t.Fatalf("record %d has T=%d; pagination must preserve time order", i, rec.T)
		}
	}

	// The drain-everything helper agrees.
	all, err := client.Records(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Errorf("Records = %d, want %d", len(all), n)
	}
}

// TestV2BatchAtomicValidation: one bad release voids the whole batch.
func TestV2BatchAtomicValidation(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	p := grid.Center(2)
	body := fmt.Sprintf(
		`{"user":4,"policy_version":1,"releases":[{"t":0,"x":%v,"y":%v},{"t":-7,"x":%v,"y":%v}]}`,
		p.X, p.Y, p.X, p.Y)
	status, e := postV2(t, base, "/v2/reports", body)
	if status != http.StatusBadRequest || e.Code != wire.CodeBadRequest {
		t.Fatalf("status=%d code=%q, want 400 bad_request", status, e.Code)
	}
	if n := len(srv.db.UserRecords(4)); n != 0 {
		t.Errorf("%d records stored from an invalid batch, want 0 (atomic)", n)
	}
}

// TestClientAutoPolicyRefresh: a policy bump between reports is absorbed
// transparently — the client adopts the inline policy from the 409 and
// retries once.
func TestClientAutoPolicyRefresh(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	if err := client.Report(0, 0, grid.Center(1)); err != nil {
		t.Fatal(err)
	}
	if cp, ok := client.CachedPolicy(0); !ok || cp.Version != 1 {
		t.Fatalf("cached policy = %+v, want version 1", cp)
	}
	// Policy bump behind the client's back.
	if _, err := client.MarkInfected([]int{5}); err != nil {
		t.Fatal(err)
	}
	if err := client.Report(0, 1, grid.Center(2)); err != nil {
		t.Fatalf("report after policy bump should auto-refresh, got %v", err)
	}
	cp, ok := client.CachedPolicy(0)
	if !ok || cp.Version != 2 {
		t.Errorf("cached policy after refresh = %+v, want version 2", cp)
	}
	if cp.Graph == nil || cp.Graph.Degree(5) != 0 {
		t.Error("refreshed policy graph should isolate the infected cell")
	}
	if recs, _ := client.Records(0); len(recs) != 2 {
		t.Errorf("records = %d, want 2 (retry must not drop the report)", len(recs))
	}
}

// TestClientRoundTrip drives the typed client across the whole /v2
// surface against a live httptest server.
func TestClientRoundTrip(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()

	for _, r := range []struct{ user, t, cell int }{{0, 0, 0}, {0, 1, 5}, {1, 0, 5}} {
		if err := client.Report(r.user, r.t, grid.Center(r.cell)); err != nil {
			t.Fatal(err)
		}
	}

	pol, err := client.Policy(0)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Epsilon != 1.0 || pol.Version != 1 || pol.Graph == nil {
		t.Errorf("policy = %+v", pol)
	}
	if !pol.Graph.IsConnected() {
		t.Error("baseline policy graph should be connected")
	}

	counts, err := client.Density(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 { // cells 0 and 5 share the top-left 2x2 region
		t.Errorf("density = %v, want 2 in region 0", counts)
	}
	series, err := client.DensitySeries(0, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Errorf("series = %v", series)
	}

	changed, err := client.MarkInfected([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 {
		t.Errorf("changed = %v, want both users", changed)
	}
	exposure, err := client.Exposure(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exposure[0] != 1 || exposure[1] != 1 {
		t.Errorf("exposure = %v, want [1 1]", exposure)
	}
	code, err := client.HealthCode(1, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if code != CodeYellow {
		t.Errorf("code = %v, want yellow", code)
	}
	census, err := client.Census(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if census[CodeYellow] != 2 {
		t.Errorf("census = %v, want 2 yellow", census)
	}
}
