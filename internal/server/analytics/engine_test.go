package analytics

import (
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// countingStore wraps a Store and counts the read calls the engine
// makes, so tests can observe cache hits and misses directly.
type countingStore struct {
	storage.Store
	scanRanges atomic.Int64
	userReads  atomic.Int64
}

func (c *countingStore) ScanRange(t0, t1 int, fn func(storage.Record) bool) {
	c.scanRanges.Add(1)
	c.Store.ScanRange(t0, t1, fn)
}

func (c *countingStore) UserRecords(user int) []storage.Record {
	c.userReads.Add(1)
	return c.Store.UserRecords(user)
}

func testEngine(t *testing.T) (*Engine, *countingStore) {
	t.Helper()
	grid := geo.MustGrid(4, 4, 1)
	cs := &countingStore{Store: storage.NewMemStore()}
	e := New(grid, cs)
	// Three users over 3 steps; user 2 visits infected cell 5 twice.
	inserts := []storage.Record{
		{User: 0, T: 0, Cell: 0}, {User: 0, T: 1, Cell: 1}, {User: 0, T: 2, Cell: 2},
		{User: 1, T: 0, Cell: 15}, {User: 1, T: 1, Cell: 15}, {User: 1, T: 2, Cell: 14},
		{User: 2, T: 0, Cell: 5}, {User: 2, T: 1, Cell: 5}, {User: 2, T: 2, Cell: 6},
	}
	for _, rec := range inserts {
		cs.Insert(rec)
	}
	return e, cs
}

func TestDensityAtCorrectAndCached(t *testing.T) {
	e, cs := testEngine(t)
	first := e.DensityAt(0, 2, 2)
	// t=0: cells 0 (region 0), 15 (region 3), 5 (region 0).
	if first[0] != 2 || first[3] != 1 {
		t.Fatalf("density at t=0 = %v", first)
	}
	scans := cs.scanRanges.Load()
	again := e.DensityAt(0, 2, 2)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("cached density %v != first %v", again, first)
	}
	if got := cs.scanRanges.Load(); got != scans {
		t.Errorf("cache hit rescanned the store (%d -> %d scans)", scans, got)
	}
	// The returned slice is the caller's: mutating it must not corrupt
	// the cache.
	again[0] = 99
	if third := e.DensityAt(0, 2, 2); third[0] != 2 {
		t.Errorf("caller mutation leaked into cache: %v", third)
	}
	// A different block shape is a different cache key.
	fine := e.DensityAt(0, 1, 1)
	if len(fine) != 16 || fine[5] != 1 {
		t.Errorf("1x1 density = %v", fine)
	}
}

// TestDensityInvalidationPerTimestep is the acceptance test for the
// invalidation contract: a write to timestep t evicts t's cached
// aggregates and nothing else.
func TestDensityInvalidationPerTimestep(t *testing.T) {
	e, cs := testEngine(t)
	d0 := e.DensityAt(0, 2, 2)
	d1 := e.DensityAt(1, 2, 2)
	base := cs.scanRanges.Load()
	// Both hot: no scans.
	e.DensityAt(0, 2, 2)
	e.DensityAt(1, 2, 2)
	if got := cs.scanRanges.Load(); got != base {
		t.Fatalf("hot queries rescanned (%d -> %d)", base, got)
	}
	// Write (a brand-new user) to t=1 only.
	cs.Insert(storage.Record{User: 7, T: 1, Cell: 0})
	got0 := e.DensityAt(0, 2, 2)
	if cs.scanRanges.Load() != base {
		t.Errorf("write to t=1 invalidated t=0's cache entry")
	}
	if !reflect.DeepEqual(got0, d0) {
		t.Errorf("t=0 density changed: %v -> %v", d0, got0)
	}
	got1 := e.DensityAt(1, 2, 2)
	if cs.scanRanges.Load() != base+1 {
		t.Errorf("write to t=1 did not invalidate t=1 (scans %d -> %d)", base, cs.scanRanges.Load())
	}
	if got1[0] != d1[0]+1 {
		t.Errorf("t=1 density after write = %v, want region 0 bumped from %v", got1, d1)
	}
	// A replacement (same user, same t) must also invalidate: the
	// record moved cells even though none was added.
	cs.Insert(storage.Record{User: 7, T: 1, Cell: 15})
	moved := e.DensityAt(1, 2, 2)
	if moved[0] != d1[0] || moved[3] != d1[3]+1 {
		t.Errorf("replacement not reflected: %v (was %v)", moved, d1)
	}
}

func TestDensitySeries(t *testing.T) {
	e, cs := testEngine(t)
	series, err := e.DensitySeries(0, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 || series[0][0] != 2 || series[0][3] != 1 {
		t.Fatalf("series = %v", series)
	}
	if _, err := e.DensitySeries(2, 0, 2, 2); err == nil {
		t.Error("inverted range should error")
	}
	// A repeated series over the same window is all cache hits.
	base := cs.scanRanges.Load()
	again, err := e.DensitySeries(0, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(series, again) {
		t.Errorf("repeated series differs: %v vs %v", series, again)
	}
	if got := cs.scanRanges.Load(); got != base {
		t.Errorf("repeated series rescanned (%d -> %d)", base, got)
	}
}

func TestExposureSeriesCachedPerInfectedSet(t *testing.T) {
	e, cs := testEngine(t)
	series, err := e.InfectedExposureSeries(0, 2, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 1, 0}; !reflect.DeepEqual(series, want) {
		t.Fatalf("exposure = %v, want %v", series, want)
	}
	if _, err := e.InfectedExposureSeries(1, 0, nil); err == nil {
		t.Error("inverted range should error")
	}
	// The infected set is canonicalized: order and duplicates don't
	// miss the cache.
	base := cs.scanRanges.Load()
	if _, err := e.InfectedExposureSeries(0, 2, []int{5, 5}); err != nil {
		t.Fatal(err)
	}
	if got := cs.scanRanges.Load(); got != base {
		t.Errorf("equivalent infected set rescanned (%d -> %d)", base, got)
	}
	// A different set is a different key.
	other, err := e.InfectedExposureSeries(0, 2, []int{14})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 0, 1}; !reflect.DeepEqual(other, want) {
		t.Errorf("exposure for cell 14 = %v, want %v", other, want)
	}
}

func TestTopRegions(t *testing.T) {
	e, _ := testEngine(t)
	top := e.TopRegions(0, 2, 2, 1)
	if len(top) != 1 || top[0] != [2]int{0, 2} {
		t.Errorf("top = %v", top)
	}
	if all := e.TopRegions(0, 2, 2, 0); len(all) != 2 {
		t.Errorf("all regions = %v", all)
	}
	if got := e.TopRegions(9, 2, 2, 3); len(got) != 0 {
		t.Errorf("empty timestep top = %v", got)
	}
}

func TestHealthCodeAndCensus(t *testing.T) {
	e, cs := testEngine(t)
	if code := e.HealthCodeFor(2, []int{5}, 0, -1); code != CodeRed {
		t.Errorf("user 2 = %s, want red", code)
	}
	if code := e.HealthCodeFor(2, []int{5}, 1, 2); code != CodeGreen {
		t.Errorf("user 2 with window 1 at now=2 = %s, want green", code)
	}
	census := e.CodeCensus([]int{5}, 0, -1)
	if census[CodeRed] != 1 || census[CodeGreen] != 2 || census[CodeYellow] != 0 {
		t.Fatalf("census = %v", census)
	}
	// Hot census: no per-user reads.
	base := cs.userReads.Load()
	again := e.CodeCensus([]int{5}, 0, -1)
	if !reflect.DeepEqual(census, again) {
		t.Errorf("cached census differs: %v vs %v", again, census)
	}
	if got := cs.userReads.Load(); got != base {
		t.Errorf("hot census re-read users (%d -> %d)", base, got)
	}
	// Caller mutation must not corrupt the cache.
	again[CodeGreen] = 99
	if third := e.CodeCensus([]int{5}, 0, -1); third[CodeGreen] != 2 {
		t.Errorf("caller mutation leaked into census cache: %v", third)
	}
	// Any write invalidates the census (global epoch).
	cs.Insert(storage.Record{User: 3, T: 0, Cell: 5})
	after := e.CodeCensus([]int{5}, 0, -1)
	if after[CodeYellow] != 1 {
		t.Errorf("census after new yellow user = %v", after)
	}
}
