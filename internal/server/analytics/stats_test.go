package analytics

import (
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// TestStatsCounters pins the hit/miss accounting: a cold query is a
// miss, its repeat is a hit, and a write in between (bumping the epoch)
// turns the next query back into a miss.
func TestStatsCounters(t *testing.T) {
	grid := geo.MustGrid(4, 4, 1)
	store := storage.NewMemStore()
	e := New(grid, store)
	store.Insert(storage.Record{User: 1, T: 0, Cell: 5})

	if s := e.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("fresh engine stats %+v, want zero counters", s)
	}
	e.DensityAt(0, 2, 2)
	e.DensityAt(0, 2, 2)
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 || s.DensityEntries != 1 {
		t.Fatalf("after cold+warm density: %+v, want 1 hit, 1 miss, 1 entry", s)
	}

	// A write invalidates the epoch: the same query misses again.
	store.Insert(storage.Record{User: 2, T: 0, Cell: 6})
	e.DensityAt(0, 2, 2)
	if s := e.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("after invalidating write: %+v, want 1 hit, 2 misses", s)
	}

	e.ExposureAt(0, []int{5})
	e.ExposureAt(0, []int{5})
	e.CodeCensus([]int{5}, 1, 0)
	e.CodeCensus([]int{5}, 1, 0)
	s := e.Stats()
	if s.Hits != 3 || s.Misses != 4 {
		t.Fatalf("after exposure+census pairs: %+v, want 3 hits, 4 misses", s)
	}
	if s.ExposureEntries != 1 || s.CensusEntries != 1 {
		t.Fatalf("entry counts %+v, want one exposure and one census entry", s)
	}
}
