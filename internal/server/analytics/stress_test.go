package analytics

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// TestEngineConcurrentWithShardedStore is the go test -race target for
// the read path: sharded inserts (single and batch, including
// replacements) race with ScanRange/At and every Engine query. When the
// writers finish, every cached aggregate must equal an uncached
// recompute — a fresh Engine over the same store, whose first query
// cannot hit a cache.
func TestEngineConcurrentWithShardedStore(t *testing.T) {
	grid := geo.MustGrid(8, 8, 1)
	store := storage.NewShardedStore(8)
	e := New(grid, store)
	infected := []int{3, 17, 40}

	const (
		writers  = 6
		readers  = 6
		steps    = 25
		writeOps = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(seed), 99))
			var batch []storage.Record
			for i := 0; i < writeOps; i++ {
				rec := storage.Record{
					// Few users per writer so replacements happen often.
					User: seed*10 + int(rng.Int64N(10)),
					T:    int(rng.Int64N(steps)),
					Cell: int(rng.Int64N(int64(grid.NumCells()))),
				}
				switch i % 3 {
				case 0:
					store.Insert(rec)
				case 1:
					batch = append(batch, rec)
				default:
					if len(batch) > 4 {
						store.InsertBatch(batch)
						batch = batch[:0]
					} else {
						store.Insert(rec)
					}
				}
			}
			store.InsertBatch(batch)
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(seed), 7))
			for i := 0; i < 200; i++ {
				ti := int(rng.Int64N(steps))
				switch i % 6 {
				case 0:
					e.DensityAt(ti, 2, 2)
				case 1:
					if _, err := e.DensitySeries(0, steps-1, 4, 4); err != nil {
						t.Error(err)
					}
				case 2:
					e.ExposureAt(ti, infected)
				case 3:
					e.CodeCensus(infected, 5, steps-1)
				case 4:
					store.At(ti)
				default:
					store.ScanRange(0, ti, func(storage.Record) bool { return true })
				}
			}
		}(r)
	}
	wg.Wait()

	// Quiesced: cached results must match an uncached recompute.
	fresh := New(grid, store)
	for ti := 0; ti < steps; ti++ {
		if got, want := e.DensityAt(ti, 2, 2), fresh.DensityAt(ti, 2, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("density at t=%d: cached %v, recomputed %v", ti, got, want)
		}
		if got, want := e.ExposureAt(ti, infected), fresh.ExposureAt(ti, infected); got != want {
			t.Fatalf("exposure at t=%d: cached %d, recomputed %d", ti, got, want)
		}
		// The cached density must also agree with a raw index scan.
		counts := make([]int, grid.NumRegions(2, 2))
		store.ScanRange(ti, ti, func(rec storage.Record) bool {
			counts[grid.RegionOf(rec.Cell, 2, 2)]++
			return true
		})
		if got := e.DensityAt(ti, 2, 2); !reflect.DeepEqual(got, counts) {
			t.Fatalf("density at t=%d: cached %v, raw scan %v", ti, got, counts)
		}
	}
	if got, want := e.CodeCensus(infected, 5, steps-1), fresh.CodeCensus(infected, 5, steps-1); !reflect.DeepEqual(got, want) {
		t.Fatalf("census: cached %v, recomputed %v", got, want)
	}
	if got, want := e.CodeCensus(infected, 0, -1), fresh.CodeCensus(infected, 0, -1); !reflect.DeepEqual(got, want) {
		t.Fatalf("all-history census: cached %v, recomputed %v", got, want)
	}
}
