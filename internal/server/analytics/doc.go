// Package analytics is the cached aggregate-query engine of PANDA's
// server side: regional density grids, infected-exposure series, and
// the population health-code census, computed over released records
// only (so everything here is privacy-preserving post-processing).
//
// The Engine layers epoch-versioned caches over a storage.Store. Every
// cached aggregate remembers the store's write generation at compute
// time — the per-timestep Gen(t) for per-timestep aggregates, the
// global Epoch for whole-dataset ones — and is served only while that
// generation is still current. A write to timestep t therefore
// invalidates exactly t's cached aggregates: batch-ingesting historical
// data evicts only the touched steps, and the hot dashboard window
// stays cached.
//
// Cache coherence relies on one ordering rule: the generation is read
// *before* the records are scanned. A write racing with the scan may or
// may not be visible in the computed aggregate, but it necessarily
// bumps the generation past the value recorded with the cache entry, so
// the next query recomputes. A cache entry can be invalidated
// spuriously, never served stale.
package analytics
