package analytics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/server/storage"
)

// Cache size caps. Keys are query shapes ((t, block dims) or (range,
// infected set)), not data, so these are generous; on overflow the map
// is reset wholesale rather than LRU-tracked — refilling is one
// recompute per hot key.
const (
	maxDensityEntries  = 1 << 16
	maxExposureEntries = 1 << 16
	maxCensusEntries   = 1 << 12
)

type densityKey struct{ t, blockRows, blockCols int }

type densityEntry struct {
	gen    uint64
	counts []int
}

type exposureKey struct {
	t        int
	infected string // canonical form of the infected cell set
}

type exposureEntry struct {
	gen   uint64
	count int
}

type censusKey struct {
	window, now int
	infected    string
}

type censusEntry struct {
	epoch  uint64
	census map[Code]int
}

// Engine serves the aggregate queries from epoch-versioned caches over
// a Store. It is safe for concurrent use; concurrent misses on the same
// key recompute redundantly rather than blocking each other.
type Engine struct {
	grid  *geo.Grid
	store storage.Store

	// Cache effectiveness counters. A hit is a lookup answered from a
	// cache entry whose generation still matches the store; everything
	// else (cold key or stale entry) is a miss followed by a recompute.
	hits   atomic.Uint64
	misses atomic.Uint64

	mu       sync.RWMutex
	density  map[densityKey]densityEntry
	exposure map[exposureKey]exposureEntry
	census   map[censusKey]censusEntry
}

// Stats is a point-in-time snapshot of the engine's cache behavior:
// cumulative hit/miss counters plus the live entry count per cache.
type Stats struct {
	Hits            uint64
	Misses          uint64
	DensityEntries  int
	ExposureEntries int
	CensusEntries   int
}

// Stats returns the engine's cache counters. Hits and Misses are
// cumulative since construction; the entry counts are current sizes.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return Stats{
		Hits:            e.hits.Load(),
		Misses:          e.misses.Load(),
		DensityEntries:  len(e.density),
		ExposureEntries: len(e.exposure),
		CensusEntries:   len(e.census),
	}
}

// New creates an engine over the grid and store.
func New(grid *geo.Grid, store storage.Store) *Engine {
	return &Engine{
		grid:     grid,
		store:    store,
		density:  make(map[densityKey]densityEntry),
		exposure: make(map[exposureKey]exposureEntry),
		census:   make(map[censusKey]censusEntry),
	}
}

// DensityAt returns the number of released locations per
// blockRows×blockCols region at timestep t — the location-monitoring
// aggregate. The returned slice is the caller's to keep.
func (e *Engine) DensityAt(t, blockRows, blockCols int) []int {
	key := densityKey{t: t, blockRows: blockRows, blockCols: blockCols}
	gen := e.store.Gen(t) // before the scan: see the coherence note above
	e.mu.RLock()
	ent, ok := e.density[key]
	e.mu.RUnlock()
	if ok && ent.gen == gen {
		e.hits.Add(1)
		return append([]int(nil), ent.counts...)
	}
	e.misses.Add(1)
	counts := make([]int, e.grid.NumRegions(blockRows, blockCols))
	e.store.ScanRange(t, t, func(rec storage.Record) bool {
		counts[e.grid.RegionOf(rec.Cell, blockRows, blockCols)]++
		return true
	})
	e.mu.Lock()
	if len(e.density) >= maxDensityEntries {
		e.density = make(map[densityKey]densityEntry)
	}
	e.density[key] = densityEntry{gen: gen, counts: counts}
	e.mu.Unlock()
	return append([]int(nil), counts...)
}

// DensitySeries returns DensityAt for each timestep in [t0, t1]. Each
// timestep is cached individually, so a repeated dashboard window is
// served entirely from cache and a write to one step evicts only that
// step's entry.
func (e *Engine) DensitySeries(t0, t1, blockRows, blockCols int) ([][]int, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("analytics: inverted time range [%d, %d]", t0, t1)
	}
	out := make([][]int, 0, t1-t0+1)
	for t := t0; t <= t1; t++ {
		out = append(out, e.DensityAt(t, blockRows, blockCols))
	}
	return out, nil
}

// TopRegions returns the k busiest regions at timestep t, as (region,
// count) pairs in descending count (ties by region index).
func (e *Engine) TopRegions(t, blockRows, blockCols, k int) [][2]int {
	counts := e.DensityAt(t, blockRows, blockCols)
	pairs := make([][2]int, 0, len(counts))
	for r, c := range counts {
		if c > 0 {
			pairs = append(pairs, [2]int{r, c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][1] != pairs[j][1] {
			return pairs[i][1] > pairs[j][1]
		}
		return pairs[i][0] < pairs[j][0]
	})
	if k > 0 && len(pairs) > k {
		pairs = pairs[:k]
	}
	return pairs
}

// ExposureAt returns how many users reported a location in an infected
// cell at timestep t.
func (e *Engine) ExposureAt(t int, infected []int) int {
	key := exposureKey{t: t, infected: infectedKey(infected)}
	gen := e.store.Gen(t)
	e.mu.RLock()
	ent, ok := e.exposure[key]
	e.mu.RUnlock()
	if ok && ent.gen == gen {
		e.hits.Add(1)
		return ent.count
	}
	e.misses.Add(1)
	inf := cellSet(infected)
	n := 0
	e.store.ScanRange(t, t, func(rec storage.Record) bool {
		if inf[rec.Cell] {
			n++
		}
		return true
	})
	e.mu.Lock()
	if len(e.exposure) >= maxExposureEntries {
		e.exposure = make(map[exposureKey]exposureEntry)
	}
	e.exposure[key] = exposureEntry{gen: gen, count: n}
	e.mu.Unlock()
	return n
}

// InfectedExposureSeries returns ExposureAt for each timestep in
// [t0, t1] — the incidence proxy the health authority watches on
// released data only.
func (e *Engine) InfectedExposureSeries(t0, t1 int, infected []int) ([]int, error) {
	if t1 < t0 {
		return nil, fmt.Errorf("analytics: inverted time range [%d, %d]", t0, t1)
	}
	out := make([]int, 0, t1-t0+1)
	for t := t0; t <= t1; t++ {
		out = append(out, e.ExposureAt(t, infected))
	}
	return out, nil
}

// cellSet builds a membership set from a cell list.
func cellSet(cells []int) map[int]bool {
	set := make(map[int]bool, len(cells))
	for _, c := range cells {
		set[c] = true
	}
	return set
}

// infectedKey canonicalizes an infected cell list (sorted, deduplicated)
// into a cache-key string, so equivalent sets share cache entries.
func infectedKey(cells []int) string {
	if len(cells) == 0 {
		return ""
	}
	cs := append([]int(nil), cells...)
	sort.Ints(cs)
	var b strings.Builder
	for i, c := range cs {
		if i > 0 && cs[i-1] == c {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}
