package analytics

// Code is the certification level of the health-code service.
type Code string

// Codes, ordered by increasing risk.
const (
	CodeGreen  Code = "green"  // no recorded visit to an infected place
	CodeYellow Code = "yellow" // one recorded visit
	CodeRed    Code = "red"    // two or more recorded visits (the paper's contact rule)
)

// HealthCodeFor certifies a user from their released locations: visits
// to infected cells within the last `window` timesteps before `now`
// (records with T > now-window) are counted; window ≤ 0 counts all
// history. A negative `now` resolves to the store's latest timestep.
// The window is anchored at an explicit `now` rather than the user's
// own latest record, so a user who stopped reporting ages out of the
// window instead of keeping an eternally-fresh certificate. Because it
// runs on released data only, the certificate is privacy-preserving by
// post-processing.
func (e *Engine) HealthCodeFor(user int, infected []int, window, now int) Code {
	if now < 0 {
		now = e.store.MaxT()
	}
	return e.healthCode(user, cellSet(infected), window, now)
}

// healthCode is HealthCodeFor with the infected set prebuilt and `now`
// already resolved — the census loop calls it once per user.
func (e *Engine) healthCode(user int, inf map[int]bool, window, now int) Code {
	visits := 0
	for _, r := range e.store.UserRecords(user) {
		// The window is (now-window, now]: records after the anchor are
		// just as out-of-window as records before it, so a historical
		// `now` never counts visits that hadn't happened yet.
		if window > 0 && (r.T <= now-window || r.T > now) {
			continue
		}
		if inf[r.Cell] {
			visits++
		}
	}
	switch {
	case visits >= 2:
		return CodeRed
	case visits == 1:
		return CodeYellow
	default:
		return CodeGreen
	}
}

// CodeCensus certifies every known user and tallies the health codes —
// the population-level view of the health-code service. The window is
// anchored at `now` (negative = the store's latest timestep) so every
// user is certified against the same clock. The tally is cached against
// the store's global Epoch: any write anywhere invalidates it, because
// a census over all history cannot be pinned to one timestep.
func (e *Engine) CodeCensus(infected []int, window, now int) map[Code]int {
	if now < 0 {
		now = e.store.MaxT()
	}
	key := censusKey{window: window, now: now, infected: infectedKey(infected)}
	epoch := e.store.Epoch() // before the scan: see the coherence note
	e.mu.RLock()
	ent, ok := e.census[key]
	e.mu.RUnlock()
	if ok && ent.epoch == epoch {
		e.hits.Add(1)
		return copyCensus(ent.census)
	}
	e.misses.Add(1)
	inf := cellSet(infected)
	out := map[Code]int{CodeGreen: 0, CodeYellow: 0, CodeRed: 0}
	for _, u := range e.store.Users() {
		out[e.healthCode(u, inf, window, now)]++
	}
	e.mu.Lock()
	if len(e.census) >= maxCensusEntries {
		e.census = make(map[censusKey]censusEntry)
	}
	e.census[key] = censusEntry{epoch: epoch, census: out}
	e.mu.Unlock()
	return copyCensus(out)
}

func copyCensus(m map[Code]int) map[Code]int {
	out := make(map[Code]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
