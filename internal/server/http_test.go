package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
)

func newTestServer(t *testing.T) (*Server, *Client, *geo.Grid, func()) {
	t.Helper()
	grid := geo.MustGrid(4, 4, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(NewDB(grid), mgr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	return srv, client, grid, ts.Close
}

func TestHTTPReportAndRecords(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	if err := client.Report(1, 0, grid.Center(5), 0); err != nil {
		t.Fatal(err)
	}
	if err := client.Report(1, 1, grid.Center(6), 1); err != nil {
		t.Fatal(err)
	}
	recs, err := client.Records(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Cell != 5 || recs[1].Cell != 6 {
		t.Errorf("records = %+v", recs)
	}
}

func TestHTTPPolicyFetch(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	p, err := client.Policy(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epsilon != 1.0 || p.Version != 1 {
		t.Errorf("policy = %+v", p)
	}
	if p.Graph.NumNodes() != grid.NumCells() {
		t.Errorf("graph nodes = %d", p.Graph.NumNodes())
	}
	if !p.Graph.IsConnected() {
		t.Error("baseline policy graph should be connected")
	}
}

func TestHTTPInfectedFlowUpdatesPolicies(t *testing.T) {
	_, client, _, done := newTestServer(t)
	defer done()
	// Two users exist (policies assigned lazily on first fetch).
	if _, err := client.Policy(0); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Policy(1); err != nil {
		t.Fatal(err)
	}
	changed, err := client.MarkInfected([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 {
		t.Errorf("changed = %v, want both users", changed)
	}
	p, err := client.Policy(0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != 2 {
		t.Errorf("version = %d, want 2 after update", p.Version)
	}
	if p.Graph.Degree(5) != 0 {
		t.Error("infected cell should be isolated in updated policy")
	}
}

func TestHTTPStalePolicyVersionRejected(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	if _, err := client.Policy(0); err != nil {
		t.Fatal(err)
	}
	if _, err := client.MarkInfected([]int{3}); err != nil {
		t.Fatal(err)
	}
	// Version 1 is now stale (current is 2).
	if err := client.Report(0, 0, grid.Center(1), 1); err == nil {
		t.Error("stale policy version should be rejected")
	}
	if err := client.Report(0, 0, grid.Center(1), 2); err != nil {
		t.Errorf("current version rejected: %v", err)
	}
}

func TestHTTPConsentRejection(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	srv.mgr.Get(7)
	srv.mgr.Consent(7, false)
	if err := client.Report(7, 0, grid.Center(0), 0); err == nil {
		t.Error("non-consenting user's report should be rejected")
	}
}

func TestHTTPHealthCode(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	if _, err := client.MarkInfected([]int{5, 6}); err != nil {
		t.Fatal(err)
	}
	_ = client.Report(2, 0, grid.Center(5), 0)
	_ = client.Report(2, 1, grid.Center(6), 0)
	code, err := client.HealthCode(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != CodeRed {
		t.Errorf("code = %v, want red", code)
	}
	green, err := client.HealthCode(99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if green != CodeGreen {
		t.Errorf("code = %v, want green", green)
	}
}

func TestHTTPDensity(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	_ = client.Report(0, 0, grid.Center(0), 0)
	_ = client.Report(1, 0, grid.Center(1), 0)
	counts, err := client.Density(0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 {
		t.Errorf("density = %v", counts)
	}
	if _, err := client.Density(0, -1, 2); err == nil {
		t.Error("bad block dims should error")
	}
}

func TestHTTPAnalyticsEndpoints(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	_ = client.Report(0, 0, grid.Center(0), 0)
	_ = client.Report(0, 1, grid.Center(5), 0)
	_ = client.Report(1, 0, grid.Center(5), 0)

	series, err := client.DensitySeries(0, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	if series[0][0] != 2 {
		t.Errorf("t=0 region 0 count = %d, want 2", series[0][0])
	}
	if _, err := client.DensitySeries(1, 0, 2, 2); err == nil {
		t.Error("inverted range should 400")
	}
	if _, err := client.DensitySeries(0, 1, 0, 2); err == nil {
		t.Error("bad blocks should 400")
	}

	// Mark a cell infected, then query exposure and census.
	if _, err := client.MarkInfected([]int{5}); err != nil {
		t.Fatal(err)
	}
	exposure, err := client.Exposure(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if exposure[0] != 1 || exposure[1] != 1 {
		t.Errorf("exposure = %v, want [1 1]", exposure)
	}
	census, err := client.Census(0)
	if err != nil {
		t.Fatal(err)
	}
	if census[CodeYellow] != 2 {
		t.Errorf("census = %v, want 2 yellow (one infected visit each)", census)
	}
	if _, err := client.Exposure(3, 1); err == nil {
		t.Error("inverted exposure range should 400")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, client, _, done := newTestServer(t)
	defer done()
	// Missing params.
	var out map[string]string
	if err := client.get("/v1/healthcode", &out); err == nil {
		t.Error("missing user should 400")
	}
	if err := client.get("/v1/policy?user=abc", &out); err == nil {
		t.Error("bad user should 400")
	}
	// Bad JSON body.
	resp, err := http.Post(client.base+"/v1/report", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty report body → %d, want 400", resp.StatusCode)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil deps should error")
	}
}
