package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policy"
)

// newTestServer spins up a full backend and a typed /v2 client against it.
func newTestServer(t *testing.T) (*Server, *Client, *geo.Grid, func()) {
	t.Helper()
	grid := geo.MustGrid(4, 4, 1)
	mgr, err := policy.NewManager(grid, policy.Baseline(grid), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(NewShardedDB(grid, 4), mgr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewClient(ts.URL, ts.Client())
	return srv, client, grid, ts.Close
}

// rawPost POSTs a JSON body and returns status + decoded-as-map body.
func rawPost(t *testing.T, base, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeMap(t, resp.Body)
}

// rawGet GETs a path and returns status + decoded-as-map body.
func rawGet(t *testing.T, base, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeMap(t, resp.Body)
}

func decodeMap(t *testing.T, r io.Reader) map[string]any {
	t.Helper()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	_ = json.Unmarshal(data, &m) // 204s and arrays leave m nil
	return m
}

func (c *Client) baseURL() string { return c.base }

func TestV1ReportAndRecords(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	p := grid.Center(5)
	status, _ := rawPost(t, base, "/v1/report",
		fmt.Sprintf(`{"user":1,"t":0,"x":%v,"y":%v,"policy_version":1}`, p.X, p.Y))
	if status != http.StatusNoContent {
		t.Fatalf("report status = %d, want 204", status)
	}
	resp, err := http.Get(base + "/v1/records?user=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Cell != 5 {
		t.Errorf("records = %+v", recs)
	}
}

// TestV1LegacyVersionZeroSkipsStaleCheck pins the documented /v1 quirk:
// policy_version 0 means "unset" and bypasses the staleness check, so
// pre-versioning clients keep working even after a policy update. /v2
// rejects unversioned reports instead.
func TestV1LegacyVersionZeroSkipsStaleCheck(t *testing.T) {
	_, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	if _, err := client.Policy(0); err != nil { // materialize the user
		t.Fatal(err)
	}
	if _, err := client.MarkInfected([]int{3}); err != nil { // bump to version 2
		t.Fatal(err)
	}
	p := grid.Center(1)
	// Version 1 is stale → 409.
	status, body := rawPost(t, base, "/v1/report",
		fmt.Sprintf(`{"user":0,"t":0,"x":%v,"y":%v,"policy_version":1}`, p.X, p.Y))
	if status != http.StatusConflict {
		t.Errorf("stale version status = %d (%v), want 409", status, body)
	}
	// Version 0 skips the check entirely → accepted (legacy behavior).
	status, body = rawPost(t, base, "/v1/report",
		fmt.Sprintf(`{"user":0,"t":0,"x":%v,"y":%v}`, p.X, p.Y))
	if status != http.StatusNoContent {
		t.Errorf("unversioned report status = %d (%v), want 204 (legacy skip)", status, body)
	}
	// The current version is accepted.
	status, body = rawPost(t, base, "/v1/report",
		fmt.Sprintf(`{"user":0,"t":1,"x":%v,"y":%v,"policy_version":2}`, p.X, p.Y))
	if status != http.StatusNoContent {
		t.Errorf("current version status = %d (%v), want 204", status, body)
	}
}

func TestV1ConsentRejection(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	srv.mgr.Get(7)
	srv.mgr.Consent(7, false)
	p := grid.Center(0)
	status, _ := rawPost(t, client.baseURL(), "/v1/report",
		fmt.Sprintf(`{"user":7,"t":0,"x":%v,"y":%v}`, p.X, p.Y))
	if status != http.StatusForbidden {
		t.Errorf("non-consenting report status = %d, want 403", status)
	}
}

// TestV1ParamValidation covers the centralized range rules: negative
// timesteps, inverted ranges, and non-positive windows are rejected
// instead of silently computed on.
func TestV1ParamValidation(t *testing.T) {
	_, client, _, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	for _, tc := range []struct{ name, path string }{
		{"negative t", "/v1/density?t=-1&block_rows=2&block_cols=2"},
		{"zero block", "/v1/density?t=0&block_rows=0&block_cols=2"},
		{"inverted range", "/v1/density_series?t0=3&t1=1&block_rows=2&block_cols=2"},
		{"negative t0", "/v1/density_series?t0=-2&t1=1&block_rows=2&block_cols=2"},
		{"inverted exposure", "/v1/exposure?t0=5&t1=2"},
		{"zero window", "/v1/healthcode?user=0&window=0"},
		{"negative window", "/v1/census?window=-3"},
		{"negative now", "/v1/healthcode?user=0&window=2&now=-1"},
		{"missing user", "/v1/healthcode"},
		{"bad user", "/v1/policy?user=abc"},
	} {
		status, body := rawGet(t, base, tc.path)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%v), want 400", tc.name, status, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}
	// Bad JSON body.
	status, _ := rawPost(t, base, "/v1/report", "{not json")
	if status != http.StatusBadRequest {
		t.Errorf("bad report body status = %d, want 400", status)
	}
}

// TestV1HealthCodeExplicitNow exercises the now parameter over the wire:
// an old infected visit ages out of the window under a later clock.
func TestV1HealthCodeExplicitNow(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	if _, err := client.MarkInfected([]int{5}); err != nil {
		t.Fatal(err)
	}
	if err := srv.db.Insert(Record{User: 2, T: 2, Point: grid.Center(5), Cell: -1}); err != nil {
		t.Fatal(err)
	}
	status, body := rawGet(t, base, "/v1/healthcode?user=2&window=14&now=10")
	if status != http.StatusOK || body["code"] != "yellow" {
		t.Errorf("now=10: status=%d code=%v, want yellow", status, body["code"])
	}
	status, body = rawGet(t, base, "/v1/healthcode?user=2&window=14&now=30")
	if status != http.StatusOK || body["code"] != "green" {
		t.Errorf("now=30: status=%d code=%v, want green (aged out)", status, body["code"])
	}
}

func TestV1DensityAndCensus(t *testing.T) {
	srv, client, grid, done := newTestServer(t)
	defer done()
	base := client.baseURL()
	_ = srv.db.Insert(Record{User: 0, T: 0, Point: grid.Center(0), Cell: -1})
	_ = srv.db.Insert(Record{User: 1, T: 0, Point: grid.Center(1), Cell: -1})
	status, body := rawGet(t, base, "/v1/density?t=0&block_rows=2&block_cols=2")
	if status != http.StatusOK {
		t.Fatalf("density status = %d", status)
	}
	counts, _ := body["counts"].([]any)
	if len(counts) != 4 || counts[0].(float64) != 2 {
		t.Errorf("density counts = %v", body["counts"])
	}
	status, body = rawGet(t, base, "/v1/census")
	if status != http.StatusOK {
		t.Fatalf("census status = %d", status)
	}
	if body["green"].(float64) != 2 {
		t.Errorf("census = %v, want 2 green", body)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil); err == nil {
		t.Error("nil deps should error")
	}
}
