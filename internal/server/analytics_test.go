package server

import (
	"testing"

	"github.com/pglp/panda/internal/geo"
)

func analyticsDB(t *testing.T) (*DB, *geo.Grid) {
	t.Helper()
	grid := geo.MustGrid(4, 4, 1)
	db := NewDB(grid)
	// Three users over 3 steps; user 2 visits infected cell 5 twice.
	inserts := []Record{
		{User: 0, T: 0, Cell: 0}, {User: 0, T: 1, Cell: 1}, {User: 0, T: 2, Cell: 2},
		{User: 1, T: 0, Cell: 15}, {User: 1, T: 1, Cell: 15}, {User: 1, T: 2, Cell: 14},
		{User: 2, T: 0, Cell: 5}, {User: 2, T: 1, Cell: 5}, {User: 2, T: 2, Cell: 6},
	}
	for _, r := range inserts {
		if err := db.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return db, grid
}

func TestDensitySeries(t *testing.T) {
	db, _ := analyticsDB(t)
	series, err := db.DensitySeries(0, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series length = %d", len(series))
	}
	// t=0: cells 0 (region 0), 15 (region 3), 5 (region 0).
	if series[0][0] != 2 || series[0][3] != 1 {
		t.Errorf("t=0 density = %v", series[0])
	}
	if _, err := db.DensitySeries(2, 0, 2, 2); err == nil {
		t.Error("inverted range should error")
	}
}

func TestInfectedExposureSeries(t *testing.T) {
	db, _ := analyticsDB(t)
	series, err := db.InfectedExposureSeries(0, 2, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 0}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("exposure series = %v, want %v", series, want)
		}
	}
	if _, err := db.InfectedExposureSeries(1, 0, nil); err == nil {
		t.Error("inverted range should error")
	}
}

func TestTopRegions(t *testing.T) {
	db, _ := analyticsDB(t)
	top := db.TopRegions(0, 2, 2, 1)
	if len(top) != 1 || top[0][0] != 0 || top[0][1] != 2 {
		t.Errorf("top regions = %v", top)
	}
	all := db.TopRegions(0, 2, 2, 0)
	if len(all) != 2 {
		t.Errorf("all regions = %v", all)
	}
	// Empty timestep.
	if got := db.TopRegions(9, 2, 2, 3); len(got) != 0 {
		t.Errorf("empty timestep top = %v", got)
	}
}

func TestCodeCensus(t *testing.T) {
	db, _ := analyticsDB(t)
	census := db.CodeCensus([]int{5}, 0, -1)
	if census[CodeRed] != 1 { // user 2: two visits to cell 5
		t.Errorf("census = %v, want 1 red", census)
	}
	if census[CodeGreen] != 2 {
		t.Errorf("census = %v, want 2 green", census)
	}
	total := census[CodeGreen] + census[CodeYellow] + census[CodeRed]
	if total != 3 {
		t.Errorf("census covers %d users, want 3", total)
	}
}
