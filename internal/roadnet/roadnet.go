package roadnet

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policygraph"
)

// RoadMap marks which cells of a grid are streets.
type RoadMap struct {
	Grid   *geo.Grid
	isRoad []bool
	roads  []int // sorted road cell IDs
}

// Manhattan builds a Manhattan-style street layout: every spacing-th row
// and column is a street, everything else is buildings. spacing ≥ 2.
func Manhattan(grid *geo.Grid, spacing int) (*RoadMap, error) {
	if spacing < 2 {
		return nil, fmt.Errorf("roadnet: spacing must be ≥ 2, got %d", spacing)
	}
	rm := &RoadMap{Grid: grid, isRoad: make([]bool, grid.NumCells())}
	for id := 0; id < grid.NumCells(); id++ {
		c := grid.CellOf(id)
		if c.Row%spacing == 0 || c.Col%spacing == 0 {
			rm.isRoad[id] = true
			rm.roads = append(rm.roads, id)
		}
	}
	return rm, nil
}

// FromCells builds a road map from an explicit street cell list.
func FromCells(grid *geo.Grid, cells []int) (*RoadMap, error) {
	rm := &RoadMap{Grid: grid, isRoad: make([]bool, grid.NumCells())}
	for _, id := range cells {
		if !grid.InRange(id) {
			return nil, fmt.Errorf("roadnet: cell %d out of range", id)
		}
		if !rm.isRoad[id] {
			rm.isRoad[id] = true
			rm.roads = append(rm.roads, id)
		}
	}
	if len(rm.roads) == 0 {
		return nil, errors.New("roadnet: no road cells")
	}
	sort.Ints(rm.roads)
	return rm, nil
}

// IsRoad reports whether a cell is a street.
func (rm *RoadMap) IsRoad(id int) bool {
	return rm.Grid.InRange(id) && rm.isRoad[id]
}

// Roads returns the sorted street cell IDs (shared slice; do not modify).
func (rm *RoadMap) Roads() []int { return rm.roads }

// NumRoads returns the number of street cells.
func (rm *RoadMap) NumRoads() int { return len(rm.roads) }

// RandomRoad returns a uniformly random street cell.
func (rm *RoadMap) RandomRoad(rng *rand.Rand) int {
	return rm.roads[rng.IntN(len(rm.roads))]
}

// Neighbors returns the 4-adjacent street cells of a street cell —
// movement along roads only.
func (rm *RoadMap) Neighbors(id int) []int {
	if !rm.IsRoad(id) {
		return nil
	}
	var out []int
	for _, n := range rm.Grid.Neighbors4(id) {
		if rm.isRoad[n] {
			out = append(out, n)
		}
	}
	return out
}

// PolicyGraph builds the Geo-Graph-Indistinguishability policy: street
// cells connected to adjacent street cells. Building cells stay isolated
// (they are not possible locations, so no protection is required — and a
// mechanism over this policy never releases them). Under {ε,G}-location
// privacy this yields ε·d_road indistinguishability, the GGI guarantee.
func (rm *RoadMap) PolicyGraph() *policygraph.Graph {
	g := policygraph.New(rm.Grid.NumCells())
	for _, id := range rm.roads {
		for _, n := range rm.Neighbors(id) {
			g.AddEdge(id, n)
		}
	}
	return g
}

// RoadDistance returns the shortest-path hop distance between two street
// cells along the network, or -1 if disconnected or off-road. Network
// distance is the right utility metric for LBS over roads.
func (rm *RoadMap) RoadDistance(a, b int) int {
	if !rm.IsRoad(a) || !rm.IsRoad(b) {
		return -1
	}
	if a == b {
		return 0
	}
	dist := map[int]int{a: 0}
	queue := []int{a}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range rm.Neighbors(u) {
			if _, seen := dist[v]; seen {
				continue
			}
			dist[v] = dist[u] + 1
			if v == b {
				return dist[v]
			}
			queue = append(queue, v)
		}
	}
	return -1
}

// NearestRoad snaps an arbitrary cell to the closest street cell by
// Euclidean distance (ties broken by lower ID). Used to project off-road
// releases (e.g. from the Geo-I baseline) back onto the network.
func (rm *RoadMap) NearestRoad(id int) int {
	if rm.IsRoad(id) {
		return id
	}
	best, bestD := rm.roads[0], rm.Grid.EuclidCells(id, rm.roads[0])
	for _, r := range rm.roads[1:] {
		if d := rm.Grid.EuclidCells(id, r); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// RandomWalk generates a road-constrained trajectory of the given length
// starting from a random street cell: at each step the walker keeps
// direction with momentum or turns at intersections.
func (rm *RoadMap) RandomWalk(rng *rand.Rand, steps int) ([]int, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("roadnet: steps must be positive, got %d", steps)
	}
	cur := rm.RandomRoad(rng)
	out := make([]int, steps)
	prev := -1
	for t := 0; t < steps; t++ {
		out[t] = cur
		ns := rm.Neighbors(cur)
		if len(ns) == 0 {
			continue // isolated road cell: stay
		}
		// Momentum: avoid immediately backtracking when possible.
		cands := ns[:0:0]
		for _, n := range ns {
			if n != prev {
				cands = append(cands, n)
			}
		}
		if len(cands) == 0 {
			cands = ns
		}
		prev = cur
		cur = cands[rng.IntN(len(cands))]
	}
	return out, nil
}
