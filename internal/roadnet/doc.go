// Package roadnet provides a road-network substrate for PANDA: grid maps
// where only street cells are valid locations and movement follows the
// street graph. It reproduces the setting of the authors' follow-up work
// "Geo-Graph-Indistinguishability: Protecting Location Privacy for LBS
// over Road Networks" (Takagi, Cao, Asano, Yoshikawa — the paper's
// reference [17]): indistinguishability scaled by shortest-path distance
// on the road network rather than Euclidean distance. Under PGLP this is
// simply a policy graph whose edges are road adjacencies, so the entire
// mechanism stack applies unchanged — the demonstration of PGLP's claim to
// generality.
package roadnet
