package roadnet

import (
	"testing"

	"github.com/pglp/panda/internal/dp"
	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/mechanism"
)

func TestManhattanLayout(t *testing.T) {
	grid := geo.MustGrid(9, 9, 1)
	rm, err := Manhattan(grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0,4,8 and cols 0,4,8 are streets.
	if !rm.IsRoad(grid.ID(geo.Cell{Row: 0, Col: 3})) {
		t.Error("row 0 should be street")
	}
	if !rm.IsRoad(grid.ID(geo.Cell{Row: 3, Col: 4})) {
		t.Error("col 4 should be street")
	}
	if rm.IsRoad(grid.ID(geo.Cell{Row: 1, Col: 1})) {
		t.Error("(1,1) should be a building")
	}
	if rm.NumRoads() == 0 || rm.NumRoads() >= grid.NumCells() {
		t.Errorf("NumRoads = %d", rm.NumRoads())
	}
	if _, err := Manhattan(grid, 1); err == nil {
		t.Error("spacing 1 should error")
	}
}

func TestFromCells(t *testing.T) {
	grid := geo.MustGrid(3, 3, 1)
	rm, err := FromCells(grid, []int{0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rm.NumRoads() != 3 {
		t.Errorf("NumRoads = %d (duplicates must collapse)", rm.NumRoads())
	}
	if _, err := FromCells(grid, []int{99}); err == nil {
		t.Error("bad cell should error")
	}
	if _, err := FromCells(grid, nil); err == nil {
		t.Error("empty roads should error")
	}
}

func TestNeighborsFollowStreets(t *testing.T) {
	grid := geo.MustGrid(9, 9, 1)
	rm, _ := Manhattan(grid, 4)
	// A mid-street cell on row 0 has street neighbors left/right but its
	// southern neighbor is a building (col 1 is not a multiple of 4).
	id := grid.ID(geo.Cell{Row: 0, Col: 1})
	ns := rm.Neighbors(id)
	for _, n := range ns {
		if !rm.IsRoad(n) {
			t.Fatalf("neighbor %d is not a street", n)
		}
	}
	if len(ns) != 2 {
		t.Errorf("street cell (0,1) has %d road neighbors, want 2", len(ns))
	}
	// Intersections have more.
	inter := grid.ID(geo.Cell{Row: 4, Col: 4})
	if len(rm.Neighbors(inter)) != 4 {
		t.Errorf("intersection has %d road neighbors, want 4", len(rm.Neighbors(inter)))
	}
	if rm.Neighbors(grid.ID(geo.Cell{Row: 1, Col: 1})) != nil {
		t.Error("building cells have no road neighbors")
	}
}

func TestPolicyGraphIsRoadAdjacency(t *testing.T) {
	grid := geo.MustGrid(9, 9, 1)
	rm, _ := Manhattan(grid, 4)
	g := rm.PolicyGraph()
	// Every edge connects adjacent street cells.
	for _, e := range g.Edges() {
		if !rm.IsRoad(e[0]) || !rm.IsRoad(e[1]) {
			t.Fatalf("edge %v touches a building", e)
		}
	}
	// Buildings are isolated.
	b := grid.ID(geo.Cell{Row: 1, Col: 1})
	if g.Degree(b) != 0 {
		t.Error("building should be isolated in the policy graph")
	}
	// The street network is connected on a Manhattan layout.
	comp := g.ComponentOf(rm.Roads()[0])
	if len(comp) != rm.NumRoads() {
		t.Errorf("street component %d of %d roads", len(comp), rm.NumRoads())
	}
}

func TestRoadDistance(t *testing.T) {
	grid := geo.MustGrid(9, 9, 1)
	rm, _ := Manhattan(grid, 4)
	a := grid.ID(geo.Cell{Row: 0, Col: 0})
	b := grid.ID(geo.Cell{Row: 0, Col: 8})
	if d := rm.RoadDistance(a, b); d != 8 {
		t.Errorf("straight-street distance = %d, want 8", d)
	}
	if d := rm.RoadDistance(a, a); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	// Around-the-block: (4,1)... both on streets; distance via network.
	c := grid.ID(geo.Cell{Row: 4, Col: 4})
	if d := rm.RoadDistance(a, c); d != 8 {
		t.Errorf("corner-to-intersection = %d, want 8", d)
	}
	if d := rm.RoadDistance(a, grid.ID(geo.Cell{Row: 1, Col: 1})); d != -1 {
		t.Error("off-road distance should be -1")
	}
}

func TestNearestRoad(t *testing.T) {
	grid := geo.MustGrid(9, 9, 1)
	rm, _ := Manhattan(grid, 4)
	b := grid.ID(geo.Cell{Row: 1, Col: 1})
	n := rm.NearestRoad(b)
	if !rm.IsRoad(n) {
		t.Fatal("NearestRoad returned a building")
	}
	if d := grid.EuclidCells(b, n); d > 1.5 {
		t.Errorf("nearest road at distance %v, expected adjacent", d)
	}
	// Street cells snap to themselves.
	s := grid.ID(geo.Cell{Row: 0, Col: 5})
	if rm.NearestRoad(s) != s {
		t.Error("street should snap to itself")
	}
}

func TestRandomWalkStaysOnRoads(t *testing.T) {
	grid := geo.MustGrid(13, 13, 1)
	rm, _ := Manhattan(grid, 4)
	rng := dp.NewRand(7)
	walk, err := rm.RandomWalk(rng, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(walk) != 200 {
		t.Fatalf("walk length %d", len(walk))
	}
	for i, c := range walk {
		if !rm.IsRoad(c) {
			t.Fatalf("step %d leaves the road: %d", i, c)
		}
		if i > 0 {
			d := rm.RoadDistance(walk[i-1], c)
			if d > 1 || d < 0 {
				t.Fatalf("step %d jumps %d road hops", i, d)
			}
		}
	}
	if _, err := rm.RandomWalk(rng, 0); err == nil {
		t.Error("zero steps should error")
	}
}

// TestGGIMechanismStaysOnNetwork is the headline property of the road-
// network policy: a PGLP mechanism bound to it never releases a building.
func TestGGIMechanismStaysOnNetwork(t *testing.T) {
	grid := geo.MustGrid(9, 9, 1)
	rm, _ := Manhattan(grid, 4)
	g := rm.PolicyGraph()
	m, err := mechanism.NewGraphExponential(grid, g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := dp.NewRand(3)
	for i := 0; i < 500; i++ {
		s := rm.RandomRoad(rng)
		z, err := m.Release(rng, s)
		if err != nil {
			t.Fatal(err)
		}
		if !rm.IsRoad(grid.Snap(z)) {
			t.Fatalf("GGI release landed on a building: %v", z)
		}
	}
}
