package policygraph

import (
	"math/rand/v2"

	"github.com/pglp/panda/internal/geo"
)

// GridEightNeighbor builds policy graph G1 of paper Fig. 2: every cell is
// connected to its closest eight cells on the map. PGLP under G1 implies
// ε-Geo-Indistinguishability (Theorem 2.1).
func GridEightNeighbor(grid *geo.Grid) *Graph {
	g := New(grid.NumCells())
	for id := 0; id < grid.NumCells(); id++ {
		for _, v := range grid.Neighbors8(id) {
			g.AddEdge(id, v)
		}
	}
	return g
}

// GridFourNeighbor builds the 4-adjacency variant of G1 (ablation).
func GridFourNeighbor(grid *geo.Grid) *Graph {
	g := New(grid.NumCells())
	for id := 0; id < grid.NumCells(); id++ {
		for _, v := range grid.Neighbors4(id) {
			g.AddEdge(id, v)
		}
	}
	return g
}

// Complete builds policy graph G2 of paper Fig. 2: a complete graph over
// the given location set (e.g. a δ-location set), leaving all other nodes
// isolated. PGLP under G2 implies δ-Location Set privacy (Theorem 2.2).
// If set is nil, the clique covers the whole universe.
func Complete(n int, set []int) *Graph {
	g := New(n)
	if set == nil {
		set = make([]int, n)
		for i := range set {
			set[i] = i
		}
	}
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			g.AddEdge(set[i], set[j])
		}
	}
	return g
}

// PartitionCliques builds the Ga/Gb family of paper Fig. 4: the grid is cut
// into blockRows×blockCols coarse areas; locations inside the same area are
// pairwise indistinguishable (a clique), while locations in different areas
// are distinguishable (no edges across areas). Location monitoring uses a
// coarse blocking (Ga); epidemic analysis a finer one (Gb).
func PartitionCliques(grid *geo.Grid, blockRows, blockCols int) *Graph {
	g := New(grid.NumCells())
	for _, region := range grid.Partition(blockRows, blockCols) {
		for i := 0; i < len(region); i++ {
			for j := i + 1; j < len(region); j++ {
				g.AddEdge(region[i], region[j])
			}
		}
	}
	return g
}

// PartitionGrid8 is a sparser variant of PartitionCliques that keeps only
// 8-neighbor edges inside each area (ablation: same components, longer
// graph distances).
func PartitionGrid8(grid *geo.Grid, blockRows, blockCols int) *Graph {
	g := New(grid.NumCells())
	for id := 0; id < grid.NumCells(); id++ {
		r := grid.RegionOf(id, blockRows, blockCols)
		for _, v := range grid.Neighbors8(id) {
			if grid.RegionOf(v, blockRows, blockCols) == r {
				g.AddEdge(id, v)
			}
		}
	}
	return g
}

// IsolateNodes builds policy graph Gc of paper Fig. 4 from a base policy:
// every edge incident to a node in disclose is removed, so those locations
// may be released exactly ("allowing disclosure of the true location if the
// user accesses an infected location"), while the remaining locations keep
// their indistinguishability requirements.
func IsolateNodes(base *Graph, disclose []int) *Graph {
	g := base.Clone()
	for _, u := range disclose {
		if u < 0 || u >= g.n {
			continue
		}
		for _, v := range g.Neighbors(u) {
			g.RemoveEdge(u, v)
		}
	}
	return g
}

// RandomER builds an Erdős–Rényi policy graph G(n, p) over the whole node
// universe: each pair becomes an edge independently with probability p.
func RandomER(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomSubsetER reproduces the "Random Policy Graph" control of paper
// Fig. 5 (knobs: Size, Density): choose `size` distinct nodes uniformly at
// random from the universe and connect each pair among them independently
// with probability `density`. All other locations stay isolated
// (disclosable).
func RandomSubsetER(n, size int, density float64, rng *rand.Rand) *Graph {
	if size > n {
		size = n
	}
	perm := rng.Perm(n)
	set := perm[:size]
	g := New(n)
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if rng.Float64() < density {
				g.AddEdge(set[i], set[j])
			}
		}
	}
	return g
}

// RandomGeometric connects cells whose centers lie within Euclidean radius
// of each other, each such pair kept with probability p. Radius is in plane
// units of the grid. This produces spatially-coherent random policies.
func RandomGeometric(grid *geo.Grid, radius float64, p float64, rng *rand.Rand) *Graph {
	n := grid.NumCells()
	g := New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		cu := grid.Center(u)
		for v := u + 1; v < n; v++ {
			if geo.Dist2(cu, grid.Center(v)) <= r2 && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Path builds a path graph 0-1-2-…-(n-1); used by tests and by degenerate
// (collinear) PIM scenarios.
func Path(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		g.AddEdge(u, u+1)
	}
	return g
}

// Cycle builds a cycle over n nodes.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Star builds a star with the given center over n nodes.
func Star(n, center int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		if u != center {
			g.AddEdge(center, u)
		}
	}
	return g
}
