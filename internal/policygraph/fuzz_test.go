package policygraph

import (
	"encoding/json"
	"testing"
)

// FuzzGraphJSON checks that arbitrary byte inputs never panic the decoder
// and that everything it accepts round-trips losslessly.
func FuzzGraphJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":4,"edges":[[0,1],[2,3]]}`))
	f.Add([]byte(`{"nodes":0,"edges":[]}`))
	f.Add([]byte(`{"nodes":-1}`))
	f.Add([]byte(`{"nodes":3,"edges":[[0,0]]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // rejected inputs are fine; panics are not
		}
		// Accepted graphs must be internally consistent and re-encodable.
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !g.Equal(&back) {
			t.Fatal("round trip not lossless")
		}
		// Graph invariants hold.
		if g.NumEdges() < 0 || g.NumNodes() < 0 {
			t.Fatal("negative counts")
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				t.Fatal("Edges lists a non-edge")
			}
		}
	})
}
