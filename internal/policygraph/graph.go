package policygraph

import (
	"fmt"
	"sort"
)

// Graph is an undirected location policy graph over the node universe
// {0, …, n-1}. The zero value is not usable; construct with New.
//
// Nodes with no incident edges are "unprotected": the policy places no
// indistinguishability requirement on them, so a mechanism may release them
// exactly (paper §2.2, discussion after Lemma 2.1).
type Graph struct {
	n   int
	adj []map[int]struct{}
	m   int // edge count
}

// New returns an empty policy graph over n nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([]map[int]struct{}, n)}
}

// NumNodes returns the size of the node universe.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// check panics on out-of-range nodes; policy graphs are built
// programmatically and an out-of-range node is a programming error.
func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("policygraph: node %d out of range [0,%d)", u, g.n))
	}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected
// (a location is trivially indistinguishable from itself); duplicate edges
// are ignored. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int]struct{})
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int]struct{})
	}
	if _, dup := g.adj[u][v]; dup {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	return true
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	return true
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Neighbors returns the sorted neighbor list of u (a fresh slice).
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// VisitNeighbors calls fn for each neighbor of u in unspecified order.
// It avoids the allocation of Neighbors for hot paths.
func (g *Graph) VisitNeighbors(u int, fn func(v int)) {
	g.check(u)
	for v := range g.adj[u] {
		fn(v)
	}
}

// Edges returns all edges as (u, v) pairs with u < v, sorted
// lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// IsolatedNodes returns the sorted list of degree-0 nodes — the locations
// the policy allows to be disclosed exactly.
func (g *Graph) IsolatedNodes() []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) == 0 {
			out = append(out, u)
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Equal reports whether g and h have identical node universes and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if h == nil || g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for v := range g.adj[u] {
			if _, ok := h.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns a new graph over the same node universe that
// keeps only edges with both endpoints in keep. Nodes outside keep become
// isolated. This models restricting a policy to an adversary's feasible
// location set (δ-location set).
func (g *Graph) InducedSubgraph(keep []int) *Graph {
	in := make([]bool, g.n)
	for _, u := range keep {
		if u >= 0 && u < g.n {
			in[u] = true
		}
	}
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		if !in[u] {
			continue
		}
		for v := range g.adj[u] {
			if u < v && in[v] {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// Union returns a new graph with the edges of both g and h (same universe
// required).
func (g *Graph) Union(h *Graph) (*Graph, error) {
	if g.n != h.n {
		return nil, fmt.Errorf("policygraph: union of mismatched universes %d vs %d", g.n, h.n)
	}
	c := g.Clone()
	for u := 0; u < h.n; u++ {
		for v := range h.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c, nil
}

// Density returns 2m / (n(n-1)), the fraction of possible edges present.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return 2 * float64(g.m) / (float64(g.n) * float64(g.n-1))
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("policygraph{n=%d m=%d}", g.n, g.m)
}
