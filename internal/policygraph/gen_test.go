package policygraph

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/pglp/panda/internal/geo"
)

func TestGridEightNeighbor(t *testing.T) {
	grid := geo.MustGrid(3, 3, 1)
	g := GridEightNeighbor(grid)
	if g.NumNodes() != 9 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// 3x3 grid: 12 orthogonal + 8 diagonal edges = 20.
	if g.NumEdges() != 20 {
		t.Errorf("edges = %d, want 20", g.NumEdges())
	}
	center := grid.ID(geo.Cell{Row: 1, Col: 1})
	if g.Degree(center) != 8 {
		t.Errorf("center degree = %d, want 8", g.Degree(center))
	}
	if !g.IsConnected() {
		t.Error("G1 should be connected")
	}
}

func TestGridFourNeighbor(t *testing.T) {
	grid := geo.MustGrid(3, 3, 1)
	g := GridFourNeighbor(grid)
	if g.NumEdges() != 12 {
		t.Errorf("edges = %d, want 12", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("4-neighbor grid should be connected")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6, []int{1, 3, 5})
	if g.NumEdges() != 3 {
		t.Errorf("edges = %d, want 3", g.NumEdges())
	}
	if !g.HasEdge(1, 3) || !g.HasEdge(3, 5) || !g.HasEdge(1, 5) {
		t.Error("clique edges missing")
	}
	if g.Degree(0) != 0 || g.Degree(2) != 0 {
		t.Error("non-set nodes should stay isolated")
	}
	full := Complete(5, nil)
	if full.NumEdges() != 10 {
		t.Errorf("full clique edges = %d, want 10", full.NumEdges())
	}
}

func TestPartitionCliques(t *testing.T) {
	grid := geo.MustGrid(4, 4, 1)
	g := PartitionCliques(grid, 2, 2)
	// 4 regions of 4 cells: each a K4 with 6 edges.
	if g.NumEdges() != 24 {
		t.Errorf("edges = %d, want 24", g.NumEdges())
	}
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	for _, comp := range comps {
		if len(comp) != 4 {
			t.Errorf("component size = %d, want 4", len(comp))
		}
		region := grid.RegionOf(comp[0], 2, 2)
		for _, id := range comp {
			if grid.RegionOf(id, 2, 2) != region {
				t.Error("component crosses region boundary")
			}
		}
	}
	// Within a region all pairs are 1-neighbors (complete).
	if g.Distance(comps[0][0], comps[0][3]) != 1 {
		t.Error("clique distance should be 1")
	}
}

func TestPartitionGrid8(t *testing.T) {
	grid := geo.MustGrid(6, 6, 1)
	g := PartitionGrid8(grid, 3, 3)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	// Sparser than the clique version but same components.
	if g.NumEdges() >= PartitionCliques(grid, 3, 3).NumEdges() {
		t.Error("grid8 partition should have fewer edges than cliques")
	}
	for _, comp := range comps {
		if len(comp) != 9 {
			t.Errorf("component size = %d, want 9", len(comp))
		}
	}
}

func TestIsolateNodes(t *testing.T) {
	grid := geo.MustGrid(3, 3, 1)
	base := GridEightNeighbor(grid)
	infected := []int{4} // center cell
	g := IsolateNodes(base, infected)
	if g.Degree(4) != 0 {
		t.Errorf("infected node degree = %d, want 0", g.Degree(4))
	}
	// Base graph must be unchanged (IsolateNodes clones).
	if base.Degree(4) != 8 {
		t.Error("IsolateNodes must not mutate the base graph")
	}
	// Other nodes keep their mutual edges.
	if !g.HasEdge(0, 1) {
		t.Error("edges between healthy cells should remain")
	}
	// Out-of-range disclose entries are ignored.
	g2 := IsolateNodes(base, []int{-3, 99})
	if !g2.Equal(base) {
		t.Error("out-of-range isolation should be a no-op")
	}
}

func TestRandomERDensity(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	n, p := 40, 0.3
	g := RandomER(n, p, rng)
	maxEdges := n * (n - 1) / 2
	got := float64(g.NumEdges()) / float64(maxEdges)
	if math.Abs(got-p) > 0.08 {
		t.Errorf("empirical density = %v, want ≈%v", got, p)
	}
}

func TestRandomSubsetER(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 8))
	g := RandomSubsetER(100, 20, 0.5, rng)
	touched := 0
	for u := 0; u < 100; u++ {
		if g.Degree(u) > 0 {
			touched++
		}
	}
	if touched > 20 {
		t.Errorf("%d nodes touched, want ≤ size 20", touched)
	}
	if g.NumEdges() == 0 {
		t.Error("expected some edges at density 0.5")
	}
	// size > n clamps.
	g2 := RandomSubsetER(5, 50, 1, rng)
	if g2.NumEdges() != 10 {
		t.Errorf("clamped subset edges = %d, want 10", g2.NumEdges())
	}
}

func TestRandomGeometric(t *testing.T) {
	grid := geo.MustGrid(5, 5, 1)
	rng := rand.New(rand.NewPCG(2, 4))
	g := RandomGeometric(grid, 1.5, 1.0, rng)
	// With p=1 and radius 1.5 every 8-neighbor pair is connected.
	want := GridEightNeighbor(grid)
	if !g.Equal(want) {
		t.Errorf("geometric(1.5, p=1) edges = %d, want %d (grid-8)", g.NumEdges(), want.NumEdges())
	}
}

func TestPathCycleStar(t *testing.T) {
	if Path(1).NumEdges() != 0 || Path(4).NumEdges() != 3 {
		t.Error("Path edge counts wrong")
	}
	if Cycle(4).NumEdges() != 4 || Cycle(2).NumEdges() != 1 {
		t.Error("Cycle edge counts wrong")
	}
	if Star(5, 2).Degree(2) != 4 {
		t.Error("Star center degree wrong")
	}
}
