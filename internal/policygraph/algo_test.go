package policygraph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDistancesPath(t *testing.T) {
	g := Path(5)
	d := g.DistancesFrom(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("d[%d] = %d, want %d", i, d[i], want)
		}
	}
	if g.Distance(0, 4) != 4 {
		t.Errorf("Distance(0,4) = %d", g.Distance(0, 4))
	}
	if g.Distance(2, 2) != 0 {
		t.Errorf("Distance(2,2) = %d", g.Distance(2, 2))
	}
}

func TestDistanceDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Distance(0, 3) != Unreachable {
		t.Errorf("Distance across components = %d, want Unreachable", g.Distance(0, 3))
	}
	d := g.DistancesFrom(0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Errorf("DistancesFrom = %v", d)
	}
}

func TestDistanceMatchesBFSProperty(t *testing.T) {
	// Property: bidirectional Distance agrees with DistancesFrom on random
	// graphs, is symmetric, and obeys the triangle inequality on finite
	// entries (Def. 2.2 is a graph metric within components).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		n := 12 + int(seed%8)
		g := RandomER(n, 0.2, rng)
		for trial := 0; trial < 10; trial++ {
			u, v, w := rng.IntN(n), rng.IntN(n), rng.IntN(n)
			du := g.DistancesFrom(u)
			if g.Distance(u, v) != du[v] {
				return false
			}
			if g.Distance(u, v) != g.Distance(v, u) {
				return false
			}
			duv, duw, dwv := du[v], du[w], g.Distance(w, v)
			if duv >= 0 && duw >= 0 && dwv >= 0 && duv > duw+dwv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKNeighbors(t *testing.T) {
	g := Path(6)
	got := g.KNeighbors(2, 1)
	want := []int{1, 2, 3}
	if !sameInts(got, want) {
		t.Errorf("KNeighbors(2,1) = %v, want %v", got, want)
	}
	got = g.KNeighbors(2, 2)
	want = []int{0, 1, 2, 3, 4}
	if !sameInts(got, want) {
		t.Errorf("KNeighbors(2,2) = %v, want %v", got, want)
	}
	if got := g.KNeighbors(2, 0); !sameInts(got, []int{2}) {
		t.Errorf("KNeighbors(2,0) = %v, want {2}", got)
	}
	// k<0 means ∞-neighbors.
	if got := g.KNeighbors(2, -1); !sameInts(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("KNeighbors(2,∞) = %v", got)
	}
}

func TestKNeighborsMonotone(t *testing.T) {
	// Property: N^k(s) ⊆ N^(k+1)(s) and N^k(s) ⊆ N^∞(s).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 15
		g := RandomER(n, 0.15, rng)
		s := rng.IntN(n)
		inf := toSet(g.ComponentOf(s))
		prev := map[int]bool{}
		for k := 0; k <= 5; k++ {
			cur := toSet(g.KNeighbors(s, k))
			for u := range prev {
				if !cur[u] {
					return false
				}
			}
			for u := range cur {
				if !inf[u] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("Components = %v, want 4 groups", comps)
	}
	if !sameInts(comps[0], []int{0, 1, 2}) {
		t.Errorf("comps[0] = %v", comps[0])
	}
	if !sameInts(comps[1], []int{3}) {
		t.Errorf("comps[1] = %v", comps[1])
	}
	idx := g.ComponentIndex()
	if idx[0] != idx[2] || idx[4] != idx[5] || idx[0] == idx[4] || idx[3] == idx[0] {
		t.Errorf("ComponentIndex = %v", idx)
	}
}

func TestComponentsPartitionUniverse(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 20
		g := RandomER(n, 0.1, rng)
		seen := make([]bool, n)
		for _, comp := range g.Components() {
			for _, u := range comp {
				if seen[u] {
					return false // overlap
				}
				seen[u] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false // not covering
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsConnectedAndDiameter(t *testing.T) {
	if !Path(5).IsConnected() {
		t.Error("path should be connected")
	}
	if Path(5).Diameter() != 4 {
		t.Errorf("path diameter = %d", Path(5).Diameter())
	}
	if Cycle(6).Diameter() != 3 {
		t.Errorf("cycle diameter = %d", Cycle(6).Diameter())
	}
	g := New(4)
	g.AddEdge(0, 1)
	if g.IsConnected() {
		t.Error("graph with isolated nodes is not connected")
	}
	if g.Diameter() != 1 {
		t.Errorf("diameter = %d, want 1 (largest finite)", g.Diameter())
	}
	if New(0).IsConnected() {
		t.Error("empty graph is not connected")
	}
	if New(3).Diameter() != 0 {
		t.Error("edgeless graph diameter should be 0")
	}
}

func TestAllDistances(t *testing.T) {
	g := Cycle(5)
	d := g.AllDistances()
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if d[u][v] != d[v][u] {
				t.Fatalf("AllDistances asymmetric at %d,%d", u, v)
			}
			if d[u][v] != g.Distance(u, v) {
				t.Fatalf("AllDistances[%d][%d] = %d, Distance = %d", u, v, d[u][v], g.Distance(u, v))
			}
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5, 0)
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func toSet(a []int) map[int]bool {
	m := make(map[int]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	return m
}
