package policygraph_test

import (
	"fmt"

	"github.com/pglp/panda/internal/geo"
	"github.com/pglp/panda/internal/policygraph"
)

// ExampleGridEightNeighbor builds the paper's G1 policy graph and queries
// the graph distance of Def. 2.2.
func ExampleGridEightNeighbor() {
	grid := geo.MustGrid(4, 4, 1)
	g1 := policygraph.GridEightNeighbor(grid)
	fmt.Println("edges:", g1.NumEdges())
	fmt.Println("dG(corner, far corner):", g1.Distance(0, 15))
	// Output:
	// edges: 42
	// dG(corner, far corner): 3
}

// ExampleIsolateNodes builds a Gc contact-tracing policy: infected places
// become disclosable while the rest stay protected.
func ExampleIsolateNodes() {
	grid := geo.MustGrid(3, 3, 1)
	base := policygraph.GridEightNeighbor(grid)
	gc := policygraph.IsolateNodes(base, []int{4})
	fmt.Println("disclosable:", gc.IsolatedNodes())
	fmt.Println("still protected edges:", gc.NumEdges())
	// Output:
	// disclosable: [4]
	// still protected edges: 12
}

// ExampleGraph_KNeighbors demonstrates Def. 2.3: the k-hop neighborhoods
// whose indistinguishability decays as ε·k (Lemma 2.1).
func ExampleGraph_KNeighbors() {
	path := policygraph.Path(6) // 0-1-2-3-4-5
	fmt.Println("N^1(2):", path.KNeighbors(2, 1))
	fmt.Println("N^2(2):", path.KNeighbors(2, 2))
	fmt.Println("N^∞(2):", path.KNeighbors(2, -1))
	// Output:
	// N^1(2): [1 2 3]
	// N^2(2): [0 1 2 3 4]
	// N^∞(2): [0 1 2 3 4 5]
}
