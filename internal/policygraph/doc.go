// Package policygraph implements location policy graphs (paper §2.1):
// undirected graphs whose nodes are the possible locations (grid cell IDs)
// and whose edges are required indistinguishability constraints between two
// locations. It provides the graph algorithms the PGLP mechanisms need
// (shortest-path distance, k-neighbors, connected components) and the
// generators for every policy graph the paper demonstrates (G1, G2, Ga, Gb,
// Gc and the random policy graphs of Fig. 5).
package policygraph
