package policygraph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the wire representation of a policy graph. Publishing the
// policy graph is part of the system's transparency story (paper §2.1:
// "By making the policy graph public, the system has a high level of
// transparency").
type graphJSON struct {
	Nodes int      `json:"nodes"`
	Edges [][2]int `json:"edges"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(graphJSON{Nodes: g.n, Edges: g.Edges()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var w graphJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Nodes < 0 {
		return fmt.Errorf("policygraph: negative node count %d", w.Nodes)
	}
	*g = *New(w.Nodes)
	for _, e := range w.Edges {
		if e[0] < 0 || e[0] >= w.Nodes || e[1] < 0 || e[1] >= w.Nodes {
			return fmt.Errorf("policygraph: edge %v out of range [0,%d)", e, w.Nodes)
		}
		if e[0] == e[1] {
			return fmt.Errorf("policygraph: self-loop on node %d", e[0])
		}
		g.AddEdge(e[0], e[1])
	}
	return nil
}

// WriteDOT renders the graph in Graphviz DOT format for debugging and
// documentation.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", name); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", e[0], e[1]); err != nil {
			return err
		}
	}
	for _, u := range g.IsolatedNodes() {
		if _, err := fmt.Fprintf(bw, "  %d;\n", u); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
