package policygraph

import "sort"

// Unreachable is the distance reported between nodes in different
// components (dG = ∞ in the paper; such pairs carry no
// indistinguishability requirement, Lemma 2.1).
const Unreachable = -1

// DistancesFrom returns the BFS hop distances from s to every node.
// Unreachable nodes get Unreachable (-1).
func (g *Graph) DistancesFrom(s int) []int {
	g.check(s)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[s] = 0
	queue := make([]int, 0, 16)
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Distance returns the shortest-path length dG(u, v) (paper Def. 2.2), or
// Unreachable if u and v are disconnected.
func (g *Graph) Distance(u, v int) int {
	g.check(u)
	g.check(v)
	if u == v {
		return 0
	}
	// Bidirectional BFS.
	du := map[int]int{u: 0}
	dv := map[int]int{v: 0}
	qu, qv := []int{u}, []int{v}
	for len(qu) > 0 && len(qv) > 0 {
		if len(qu) > len(qv) {
			qu, qv = qv, qu
			du, dv = dv, du
		}
		var next []int
		for _, x := range qu {
			for y := range g.adj[x] {
				if d, met := dv[y]; met {
					return du[x] + 1 + d
				}
				if _, seen := du[y]; !seen {
					du[y] = du[x] + 1
					next = append(next, y)
				}
			}
		}
		qu = next
	}
	return Unreachable
}

// KNeighbors returns N^k(s): the sorted set of nodes within k hops of s,
// including s itself (paper Def. 2.3). k < 0 is treated as ∞.
func (g *Graph) KNeighbors(s, k int) []int {
	g.check(s)
	if k < 0 {
		return g.ComponentOf(s)
	}
	dist := map[int]int{s: 0}
	queue := []int{s}
	out := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == k {
			continue
		}
		for v := range g.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
				out = append(out, v)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ComponentOf returns N^∞(s): the sorted connected component containing s.
func (g *Graph) ComponentOf(s int) []int {
	g.check(s)
	seen := map[int]bool{s: true}
	queue := []int{s}
	out := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
				out = append(out, v)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Components returns all connected components, each sorted, ordered by
// their smallest node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// ComponentIndex labels every node with the index of its component in the
// order returned by Components.
func (g *Graph) ComponentIndex() []int {
	idx := make([]int, g.n)
	for i := range idx {
		idx[i] = -1
	}
	for ci, comp := range g.Components() {
		for _, u := range comp {
			idx[u] = ci
		}
	}
	return idx
}

// IsConnected reports whether the graph has a single connected component
// (requires n >= 1).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return false
	}
	return len(g.ComponentOf(0)) == g.n
}

// Diameter returns the largest finite shortest-path distance in the graph
// (the maximum over components of each component's diameter). Returns 0
// for edgeless graphs.
func (g *Graph) Diameter() int {
	best := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) == 0 {
			continue
		}
		for _, d := range g.DistancesFrom(u) {
			if d > best {
				best = d
			}
		}
	}
	return best
}

// AllDistances computes the full n×n hop-distance matrix (row-major),
// with Unreachable for disconnected pairs. Intended for the mechanism
// layer, which caches it per policy graph.
func (g *Graph) AllDistances() [][]int {
	out := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		out[u] = g.DistancesFrom(u)
	}
	return out
}

// DegreeHistogram returns a map from degree to node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[len(g.adj[u])]++
	}
	return h
}
