package policygraph

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Error("AddEdge(0,1) should add")
	}
	if g.AddEdge(1, 0) {
		t.Error("duplicate edge should not add")
	}
	if g.AddEdge(2, 2) {
		t.Error("self-loop should not add")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should be undirected")
	}
	if !g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge should remove")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge of absent edge should report false")
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range node")
		}
	}()
	g.AddEdge(0, 5)
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 4)
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d", g.Degree(0))
	}
	got := g.Neighbors(0)
	want := []int{1, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v (sorted)", got, want)
		}
	}
	count := 0
	g.VisitNeighbors(0, func(int) { count++ })
	if count != 3 {
		t.Errorf("VisitNeighbors visited %d, want 3", count)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(2, 0)
	g.AddEdge(1, 0)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := New(5)
	g.AddEdge(1, 2)
	iso := g.IsolatedNodes()
	want := []int{0, 3, 4}
	if len(iso) != 3 {
		t.Fatalf("IsolatedNodes = %v, want %v", iso, want)
	}
	for i := range want {
		if iso[i] != want[i] {
			t.Fatalf("IsolatedNodes = %v, want %v", iso, want)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("clone should equal original")
	}
	c.AddEdge(4, 5)
	if g.Equal(c) {
		t.Error("modified clone should differ")
	}
	if g.Equal(New(5)) {
		t.Error("different universes should differ")
	}
	if g.Equal(nil) {
		t.Error("nil should differ")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	sub := g.InducedSubgraph([]int{1, 2, 3})
	if sub.NumNodes() != 5 {
		t.Errorf("induced subgraph universe changed: %d", sub.NumNodes())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(2, 3) {
		t.Error("interior edges should survive")
	}
	if sub.HasEdge(0, 1) || sub.HasEdge(3, 4) {
		t.Error("boundary edges should be dropped")
	}
}

func TestUnion(t *testing.T) {
	a := New(4)
	a.AddEdge(0, 1)
	b := New(4)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1)
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumEdges() != 2 || !u.HasEdge(0, 1) || !u.HasEdge(2, 3) {
		t.Errorf("union wrong: %v", u.Edges())
	}
	if _, err := a.Union(New(3)); err == nil {
		t.Error("mismatched universes should error")
	}
}

func TestDensity(t *testing.T) {
	g := Complete(5, nil)
	if g.Density() != 1 {
		t.Errorf("complete density = %v, want 1", g.Density())
	}
	if New(5).Density() != 0 {
		t.Error("empty density should be 0")
	}
	if New(1).Density() != 0 {
		t.Error("single-node density should be 0")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 5)
	g.AddEdge(1, 2)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(&back) {
		t.Errorf("round trip mismatch: %v vs %v", g.Edges(), back.Edges())
	}
}

func TestJSONRejectsBadInput(t *testing.T) {
	var g Graph
	for _, bad := range []string{
		`{"nodes":-1,"edges":[]}`,
		`{"nodes":3,"edges":[[0,5]]}`,
		`{"nodes":3,"edges":[[1,1]]}`,
		`{"nodes":3,"edges":[[-1,0]]}`,
	} {
		if err := json.Unmarshal([]byte(bad), &g); err == nil {
			t.Errorf("expected error for %s", bad)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "g"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "0 -- 1;") || !strings.Contains(out, "2;") {
		t.Errorf("DOT output missing parts:\n%s", out)
	}
}
