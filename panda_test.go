package panda

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func testOptions() Options {
	return Options{Rows: 8, Cols: 8, CellSize: 1, Epsilon: 1}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{}); err == nil {
		t.Error("empty options should error")
	}
	if _, err := NewSystem(Options{Rows: 4, Cols: 4, CellSize: 1, Epsilon: 0}); err == nil {
		t.Error("zero epsilon should error")
	}
	sys, err := NewSystem(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumCells() != 64 {
		t.Errorf("NumCells = %d", sys.NumCells())
	}
}

func TestUserReportAndMonitoring(t *testing.T) {
	sys, err := NewSystem(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	alice, err := sys.NewUser(1, GEM, 7)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 5; ti++ {
		r, err := alice.Report(ti, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !geoValid(sys, r) {
			t.Fatalf("release %+v invalid", r)
		}
	}
	recs := sys.Records(1)
	if len(recs) != 5 {
		t.Errorf("records = %d", len(recs))
	}
	density := sys.DensityAt(0, 4, 4)
	total := 0
	for _, c := range density {
		total += c
	}
	if total != 1 {
		t.Errorf("density total = %d, want 1", total)
	}
}

func geoValid(sys *System, r Release) bool {
	return r.Cell >= 0 && r.Cell < sys.NumCells() && sys.SnapToCell(r.Point) == r.Cell
}

func TestAllMechanismKinds(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	for i, kind := range []MechanismKind{GEM, GEME, GLM, PIM, KNorm, GeoInd} {
		u, err := sys.NewUser(10+i, kind, uint64(i))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, err := u.Report(0, 3); err != nil {
			t.Fatalf("%s report: %v", kind, err)
		}
	}
	if _, err := sys.NewUser(99, MechanismKind("bogus"), 1); err == nil {
		t.Error("unknown mechanism should error")
	}
}

func TestInfectionUpdateTriggersPolicyRefresh(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	bob, err := sys.NewUser(2, GEM, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bob.PolicyVersion() != 1 {
		t.Fatalf("initial version = %d", bob.PolicyVersion())
	}
	changed := sys.MarkInfected([]int{20, 21})
	found := false
	for _, u := range changed {
		if u == 2 {
			found = true
		}
	}
	if !found {
		t.Error("bob's policy should have changed")
	}
	// Next report rebuilds the mechanism under Gc; a visit to an infected
	// cell is disclosed exactly.
	r, err := bob.Report(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bob.PolicyVersion() != 2 {
		t.Errorf("version after refresh = %d", bob.PolicyVersion())
	}
	if r.Point != sys.CellCenter(20) || r.Cell != 20 {
		t.Errorf("infected visit should be exact: %+v", r)
	}
	// Health code turns red after two infected visits.
	if _, err := bob.Report(1, 21); err != nil {
		t.Fatal(err)
	}
	if code := sys.HealthCodeFor(2, 0, -1); code != CodeRed {
		t.Errorf("health code = %v, want red", code)
	}
	if got := sys.InfectedCells(); len(got) != 2 {
		t.Errorf("InfectedCells = %v", got)
	}
}

func TestReportHistory(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	u, _ := sys.NewUser(5, GLM, 9)
	rels, err := u.ReportHistory(10, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 3 || rels[0].T != 10 || rels[2].T != 12 {
		t.Errorf("history releases = %+v", rels)
	}
	if len(sys.Records(5)) != 3 {
		t.Error("history not stored")
	}
}

func TestReportBatchShardedSystem(t *testing.T) {
	opts := testOptions()
	opts.StoreShards = 8
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sys.NewUser(3, GEM, 11)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]int, 20)
	for i := range cells {
		cells[i] = i % sys.NumCells()
	}
	rels, err := u.ReportBatch(0, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 20 {
		t.Fatalf("releases = %d, want 20", len(rels))
	}
	recs := sys.Records(3)
	if len(recs) != 20 {
		t.Fatalf("stored = %d, want 20", len(recs))
	}
	for i, rec := range recs {
		if rec.T != i {
			t.Fatalf("record %d has T=%d, want time order", i, rec.T)
		}
	}
	// Bad input is rejected before any budget is spent or data stored.
	if _, err := u.ReportBatch(-1, []int{0}); err == nil {
		t.Error("negative fromT should error")
	}
	if _, err := u.ReportBatch(30, []int{sys.NumCells()}); err == nil {
		t.Error("out-of-range cell should error")
	}
	if len(sys.Records(3)) != 20 {
		t.Error("rejected batches must store nothing")
	}
	// A policy update mid-stream is picked up by the next batch.
	sys.MarkInfected([]int{cells[0]})
	if _, err := u.ReportBatch(20, cells[:5]); err != nil {
		t.Fatal(err)
	}
	if u.PolicyVersion() != sys.PolicyVersion(3) {
		t.Errorf("batch did not refresh policy: user=%d system=%d",
			u.PolicyVersion(), sys.PolicyVersion(3))
	}
}

func TestMovementMatrixFacade(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	u, _ := sys.NewUser(1, GEM, 1)
	_, _ = u.Report(0, 0)
	_, _ = u.Report(1, 63)
	flows := sys.MovementMatrix(0, 1, 4, 4)
	total := 0
	for _, row := range flows {
		for _, v := range row {
			total += v
		}
	}
	if total != 1 {
		t.Errorf("total flows = %d, want 1", total)
	}
}

func TestPolicyConstructors(t *testing.T) {
	o := testOptions()
	base, err := BaselinePolicy(o)
	if err != nil {
		t.Fatal(err)
	}
	if base.NumEdges() == 0 {
		t.Error("baseline should have edges")
	}
	mon, err := MonitoringPolicy(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mon.NumEdges() == 0 {
		t.Error("monitoring policy should have edges")
	}
	if _, err := MonitoringPolicy(o, 0); err == nil {
		t.Error("zero block should error")
	}
	gc := ContactTracingPolicy(base, []int{5})
	iso := gc.IsolatedCells()
	foundFive := false
	for _, c := range iso {
		if c == 5 {
			foundFive = true
		}
	}
	if !foundFive {
		t.Error("cell 5 should be isolated in Gc")
	}
	custom, err := CustomPolicy(o, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if custom.NumEdges() != 2 {
		t.Errorf("custom edges = %d", custom.NumEdges())
	}
	if _, err := CustomPolicy(o, [][2]int{{0, 99}}); err == nil {
		t.Error("bad edge should error")
	}
	// System with a custom default policy.
	o2 := o
	o2.PolicyGraph = mon
	if _, err := NewSystem(o2); err != nil {
		t.Errorf("system with custom policy: %v", err)
	}
}

func TestAuditPrivacy(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	u, _ := sys.NewUser(1, GEM, 2)
	e, err := u.AuditPrivacy(200)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Errorf("adversary error = %v, want positive under ε=1", e)
	}
}

func TestWindowBudgetEnforced(t *testing.T) {
	o := testOptions()
	o.WindowSteps = 3
	o.WindowEpsilon = 2 // ε=1 per release → 2 releases per 3-step window
	sys, err := NewSystem(o)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sys.NewUser(1, GEM, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Report(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Report(1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Report(2, 3); err == nil {
		t.Error("third release in window should exhaust budget")
	}
	// The window slides: t=3 drops the spend at t=0.
	if _, err := u.Report(3, 3); err != nil {
		t.Errorf("release after window slide failed: %v", err)
	}
	// Mismatched window options rejected.
	bad := testOptions()
	bad.WindowSteps = 5
	if _, err := NewSystem(bad); err == nil {
		t.Error("WindowSteps without WindowEpsilon should error")
	}
}

func TestVerifyMechanismFacade(t *testing.T) {
	o := testOptions()
	base, err := BaselinePolicy(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []MechanismKind{GEM, GEME, GLM, PIM} {
		ok, ratio, err := VerifyMechanism(o, base, 1, kind, 10, 3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !ok {
			t.Errorf("%s violates its own policy (ratio %v)", kind, ratio)
		}
		if ratio <= 0 || ratio > 1+1e-6 {
			t.Errorf("%s normalized ratio = %v", kind, ratio)
		}
	}
	// A mechanism audited against a tighter policy than it was built for
	// must fail. Build a custom single-edge policy between distant cells:
	// the grid-calibrated mechanisms cannot hide a 60-cell gap at ε=0.5.
	far, err := CustomPolicy(o, [][2]int{{0, 63}})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := VerifyMechanism(o, far, 0.5, GeoInd, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Geo-I baseline should fail a long-range policy edge")
	}
	if _, _, err := VerifyMechanism(o, base, 0, GEM, 10, 1); err == nil {
		t.Error("zero eps should error")
	}
}

func TestSystemAnalyticsFacade(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	u, _ := sys.NewUser(1, GEM, 3)
	if _, err := u.Report(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Report(1, 10); err != nil {
		t.Fatal(err)
	}
	series, err := sys.DensitySeries(0, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series length = %d", len(series))
	}
	total := 0
	for _, counts := range series {
		for _, c := range counts {
			total += c
		}
	}
	if total != 2 {
		t.Errorf("series total = %d, want 2", total)
	}
	sys.MarkInfected([]int{10, 11})
	if _, err := u.Report(2, 10); err != nil { // exact disclosure under Gc
		t.Fatal(err)
	}
	exposure, err := sys.ExposureSeries(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exposure[0] != 1 {
		t.Errorf("exposure = %v", exposure)
	}
	census := sys.HealthCodeCensus(0, -1)
	n := census[CodeGreen] + census[CodeYellow] + census[CodeRed]
	if n != 1 {
		t.Errorf("census covers %d users, want 1", n)
	}
	if _, err := sys.DensitySeries(2, 0, 4, 4); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHTTPHandlerFacade(t *testing.T) {
	sys, _ := NewSystem(testOptions())
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/policy?user=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy endpoint status %d", resp.StatusCode)
	}
	var body struct {
		Epsilon float64 `json:"epsilon"`
		Version int     `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Epsilon != 1 || body.Version != 1 {
		t.Errorf("policy body = %+v", body)
	}
}
