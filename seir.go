package panda

import (
	"github.com/pglp/panda/internal/epidemic"
)

// SEIRModel exposes the compartmental transmission model the paper's
// epidemic-analysis app fits (§3.1, "a predictive disease transmission
// model such as the SEIR model"). R0 = Beta/Gamma.
type SEIRModel struct {
	Beta  float64 // transmission rate
	Sigma float64 // incubation rate (1/latent period)
	Gamma float64 // recovery rate (1/infectious period)
	N     float64 // population size
}

// R0 returns the basic reproduction number β/γ.
func (m SEIRModel) R0() float64 { return m.Beta / m.Gamma }

// SEIRPoint is one integration step of the model.
type SEIRPoint struct {
	S, E, I, R float64
}

// Simulate integrates the model with RK4 for the given number of steps of
// size dt, starting from init, and returns steps+1 points.
func (m SEIRModel) Simulate(init SEIRPoint, steps int, dt float64) ([]SEIRPoint, error) {
	states, err := epidemic.SimulateSEIR(epidemic.SEIRParams{
		Beta: m.Beta, Sigma: m.Sigma, Gamma: m.Gamma, N: m.N,
	}, epidemic.SEIRState{S: init.S, E: init.E, I: init.I, R: init.R}, steps, dt)
	if err != nil {
		return nil, err
	}
	out := make([]SEIRPoint, len(states))
	for i, s := range states {
		out[i] = SEIRPoint{S: s.S, E: s.E, I: s.I, R: s.R}
	}
	return out, nil
}

// FitSEIR recovers the transmission rate β — and hence R0 — from an
// observed incidence series (new cases per step) with known σ, γ, N and
// initial state, by golden-section least squares over [betaLo, betaHi].
// Feed it incidence computed from perturbed location data to reproduce
// the paper's transmission-model accuracy evaluation.
func FitSEIR(incidence []float64, sigma, gamma, n float64, init SEIRPoint, dt, betaLo, betaHi float64) (SEIRModel, error) {
	beta, err := epidemic.FitSEIRBeta(incidence, sigma, gamma, n,
		epidemic.SEIRState{S: init.S, E: init.E, I: init.I, R: init.R}, dt, betaLo, betaHi)
	if err != nil {
		return SEIRModel{}, err
	}
	return SEIRModel{Beta: beta, Sigma: sigma, Gamma: gamma, N: n}, nil
}

// IncidenceOf converts an outbreak's integer incidence counts to the
// float series FitSEIR consumes.
func IncidenceOf(o *OutbreakResult) []float64 {
	out := make([]float64, len(o.Incidence))
	for i, v := range o.Incidence {
		out[i] = float64(v)
	}
	return out
}
